//! Online inference serving: a sharded, read-only deployment of a
//! trained checkpoint answering batched k-hop queries.
//!
//! Training (the paper's subject) produces a parameter replica; this
//! module is the deployment half the ROADMAP's north star needs. A
//! [`ServeDeployment`] spins up one frontend plus `S` shard workers on
//! the same [`Fabric`] the training engines use. Each query names a seed
//! vertex; the owning shard computes the seed's exact `L`-hop
//! in-neighborhood closure (Algorithm 2's dependency retrieval, reused
//! verbatim via [`khop_in_closure`]) and runs the model forward over the
//! closure sub-topology, which yields bit-identical logits to a
//! full-graph [`ns_gnn::inference::infer`] pass for the seed rows: every
//! row the forward *consumes* has its complete in-neighborhood inside
//! the closure, and restricted adjacency preserves aggregation order.
//!
//! The serving path exercises the same dependency machinery as training:
//! * features the shard does not own are fetched from the owning peer
//!   over the fabric (`Query` fetch → layer-0 `Rows` reply) and kept in
//!   a per-shard LRU [`FeatureCache`] with hit/miss/eviction metering —
//!   the cached-vs-fetched trade-off of the DepCache/DepComm engines,
//!   now on the read path;
//! * an unhealthy peer link degrades the fetch instead of failing the
//!   query: every peer sits behind a [`CircuitBreaker`] (consecutive
//!   fetch failures open it, a half-open probe after cooldown closes it
//!   again when the link heals), an open breaker skips straight to the
//!   replicated mirror behind a modeled slow-path penalty, and slow
//!   links are *hedged* — after a p99-derived hedge delay the shard
//!   starts the mirror read in parallel and takes whichever answer
//!   lands first (`serve.hedge.{issued,wins}`), bounding tail latency
//!   under flapping links;
//! * the frontend detects a dead shard by reply deadline and reroutes
//!   its outstanding queries to survivors — shard loss degrades latency,
//!   never drops queries.
//!
//! Admission is a bounded [`SubmitQueue`]: when the deployment is
//! saturated, [`SubmitQueue::try_push`] rejects with
//! [`ServeError::Saturated`] instead of blocking the caller — open-loop
//! load keeps its schedule and overload surfaces as a metered reject
//! rate, not as coordinated omission.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ns_gnn::{GnnModel, LayerTopology};
use ns_graph::khop::khop_in_closure;
use ns_graph::{CsrGraph, Dataset, Partitioner, Partitioning};
use ns_metrics::{MetricsFrame, MetricsRecorder, RunMetrics};
use ns_net::fabric::{Endpoint, Fabric, MessageKind, NetError};
use ns_net::fault::FaultPlan;
use ns_net::policy::{BreakerState, Budget, CircuitBreaker};
use ns_net::KIND_NAMES;
use ns_tensor::{ParamStore, Tensor};
use rustc_hash::FxHashMap;

pub mod load;

use load::OpenLoop;

/// Control-plane scalar telling a shard the run is over.
const CTRL_SHUTDOWN: f64 = -1.0;

/// Typed serving errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue is full; the query was rejected, not
    /// queued. Carries the configured capacity for the caller's error
    /// message.
    Saturated {
        /// Queue capacity at the time of rejection.
        capacity: usize,
    },
    /// The deployment is shutting down and no longer admits queries.
    Closed,
    /// The checkpoint/model/dataset triple is inconsistent (missing or
    /// shape-mismatched parameters, wrong feature width, bad shard
    /// count).
    BadDeployment(String),
    /// Every shard died before the query stream drained; the zero-drop
    /// guarantee cannot be met.
    AllShardsLost {
        /// Queries still unanswered when the last shard died.
        unanswered: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated { capacity } => {
                write!(f, "serve queue saturated (capacity {capacity}); query rejected")
            }
            ServeError::Closed => write!(f, "serve deployment closed"),
            ServeError::BadDeployment(why) => write!(f, "bad deployment: {why}"),
            ServeError::AllShardsLost { unanswered } => {
                write!(f, "all shards lost with {unanswered} queries unanswered")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving knobs. Defaults suit the bundled datasets; `nts serve`
/// exposes each as a flag (see `docs/SERVING.md`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (the frontend is extra). Each shard owns
    /// one graph partition.
    pub shards: usize,
    /// Partitioner assigning vertices to shards.
    pub partitioner: Partitioner,
    /// Bounded admission-queue capacity; a full queue rejects.
    pub queue_capacity: usize,
    /// Maximum queries per dispatched batch.
    pub batch_max: usize,
    /// Adaptive batch window: after the first query of a batch is
    /// dequeued, the dispatcher keeps accreting queries for at most this
    /// long before shipping the batch.
    pub batch_window_us: u64,
    /// Maximum queries outstanding at the shards. The dispatcher stops
    /// dequeuing beyond this, so sustained overload backs up into the
    /// bounded queue and surfaces as rejects.
    pub inflight_cap: usize,
    /// Per-shard LRU feature-cache capacity, in rows.
    pub cache_rows: usize,
    /// Frontend reply deadline: a shard with a batch older than this is
    /// declared dead and its outstanding queries are rerouted.
    pub reply_timeout_ms: u64,
    /// Shard-to-shard feature-fetch deadline before falling back to the
    /// replicated feature mirror.
    pub fetch_timeout_ms: u64,
    /// Modeled penalty of one mirror (cold-store) read burst, applied as
    /// real latency on the shard's critical path.
    pub slow_path_us: u64,
    /// Deterministic fault plan. `kill:w<id>@e<n>` kills the shard at
    /// endpoint `<id>` (shards are endpoints `1..=S`) when it receives a
    /// batch containing a query id `>= n`; wire faults (drop / delay /
    /// dup / corrupt) apply to serve traffic and heal through the
    /// fabric's CRC + retransmission machinery.
    pub fault: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            partitioner: Partitioner::Chunk,
            queue_capacity: 1024,
            batch_max: 32,
            batch_window_us: 400,
            inflight_cap: 256,
            cache_rows: 4096,
            reply_timeout_ms: 250,
            fetch_timeout_ms: 100,
            slow_path_us: 300,
            fault: FaultPlan::default(),
        }
    }
}

/// One admitted query ticket.
#[derive(Debug, Clone, Copy)]
pub struct QueryTicket {
    /// Dense query id (also the reroute/dedupe key).
    pub qid: u32,
    /// Seed vertex whose class is requested.
    pub seed: u32,
    /// Open-loop scheduled arrival; latency is measured from here, so a
    /// backed-up queue *increases* reported latency instead of hiding it
    /// (no coordinated omission).
    pub sched: Instant,
    /// When the ticket entered the queue.
    pub enqueued: Instant,
}

/// Outcome of one query.
#[derive(Debug, Clone, Copy)]
pub struct Answer {
    /// Query id.
    pub qid: u32,
    /// Seed vertex.
    pub seed: u32,
    /// Predicted class.
    pub class: u32,
    /// Scheduled-arrival-to-answer latency.
    pub latency_us: u64,
}

/// A bounded MPSC admission queue whose producer side *never blocks*: a
/// full queue rejects with [`ServeError::Saturated`]. The consumer side
/// (the dispatcher) blocks with a deadline.
pub struct SubmitQueue<T> {
    cap: usize,
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
}

struct QueueInner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

impl<T> SubmitQueue<T> {
    /// A queue admitting at most `cap` queued items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner { buf: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, or rejects immediately — this is the backpressure
    /// boundary, and it must never block the submitting thread.
    pub fn try_push(&self, item: T) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(ServeError::Closed);
        }
        if inner.buf.len() >= self.cap {
            return Err(ServeError::Saturated { capacity: self.cap });
        }
        inner.buf.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Marks the queue closed; queued items remain poppable.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Pops one item, waiting until `deadline`. `Ok(None)` means closed
    /// *and* drained — the consumer can stop.
    pub fn pop_deadline(&self, deadline: Instant) -> Result<Option<T>, ()> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.buf.pop_front() {
                return Ok(Some(item));
            }
            if inner.closed {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _) = self.cv.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().unwrap().buf.pop_front()
    }
}

/// Per-shard LRU cache of fetched feature rows, with hit/miss/eviction
/// meters. Lazy LRU: every touch appends `(vertex, tick)` to a recency
/// queue; eviction pops stale entries until it finds one whose tick
/// matches the live map.
pub struct FeatureCache {
    cap: usize,
    map: FxHashMap<u32, (Vec<f32>, u64)>,
    recency: VecDeque<(u32, u64)>,
    tick: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Rows evicted to stay within capacity.
    pub evictions: u64,
    /// Rows dropped by memory-pressure shedding (distinct from capacity
    /// evictions: these free heap for the budgeted tensor pool).
    pub sheds: u64,
}

impl FeatureCache {
    /// A cache holding at most `cap` rows (0 disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            map: FxHashMap::default(),
            recency: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            sheds: 0,
        }
    }

    /// Rows currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `v` up, metering the hit or miss and refreshing recency.
    pub fn lookup(&mut self, v: u32) -> Option<&[f32]> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&v) {
            Some((_, t)) => {
                *t = tick;
                self.recency.push_back((v, tick));
                self.hits += 1;
                Some(&self.map[&v].0)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a fetched row, evicting the least-recently-used row(s) if
    /// at capacity.
    pub fn insert(&mut self, v: u32, row: Vec<f32>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&v) {
            while self.map.len() >= self.cap {
                match self.recency.pop_front() {
                    Some((old, t)) => {
                        let live = self.map.get(&old).is_some_and(|(_, lt)| *lt == t);
                        if live {
                            self.map.remove(&old);
                            self.evictions += 1;
                        }
                    }
                    None => {
                        // Recency queue exhausted (all entries stale):
                        // drop an arbitrary row to make progress.
                        if let Some(&k) = self.map.keys().next() {
                            self.map.remove(&k);
                            self.evictions += 1;
                        }
                        break;
                    }
                }
            }
        }
        self.recency.push_back((v, self.tick));
        self.map.insert(v, (row, self.tick));
    }

    /// Drops least-recently-used rows until at most `target` remain.
    /// The memory-pressure relief valve: cached rows are the shard's one
    /// elastic allocation, so they go first when the tensor-pool budget
    /// tightens. Returns the number of rows dropped.
    pub fn shed_to(&mut self, target: usize) -> u64 {
        let mut dropped = 0u64;
        while self.map.len() > target {
            match self.recency.pop_front() {
                Some((old, t)) => {
                    let live = self.map.get(&old).is_some_and(|(_, lt)| *lt == t);
                    if live {
                        self.map.remove(&old);
                        dropped += 1;
                    }
                }
                None => {
                    if let Some(&k) = self.map.keys().next() {
                        self.map.remove(&k);
                        dropped += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        self.sheds += dropped;
        dropped
    }
}

/// Full report of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Every answered query (unordered).
    pub answers: Vec<Answer>,
    /// Queries rejected at the admission queue.
    pub rejected: u64,
    /// Queries the load driver attempted to submit.
    pub offered: u64,
    /// Admitted queries that never got an answer. The zero-drop
    /// guarantee makes this 0 unless every shard died.
    pub dropped: u64,
    /// Sorted answer latencies, µs.
    pub latencies_us: Vec<u64>,
    /// Wall-clock of the run, milliseconds.
    pub wall_ms: u64,
    /// Answers per second of wall-clock.
    pub achieved_qps: f64,
    /// Shards declared dead by the frontend.
    pub shard_deaths: u64,
    /// Queries rerouted off a dead shard.
    pub reroutes: u64,
    /// Per-worker metric frames (`serve.*` series, fabric traffic).
    pub metrics: RunMetrics,
}

impl ServeReport {
    /// Nearest-rank percentile over the answer latencies, µs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        load::percentile_us(&self.latencies_us, p)
    }

    /// Aggregate cache hit ratio across shards (0 when no lookups).
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits = self.metrics.total_counter("serve.cache.hits") as f64;
        let misses = self.metrics.total_counter("serve.cache.misses") as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }
}

/// A planned, read-only serving deployment: dataset + model + trained
/// parameters + partitioning, validated up front.
pub struct ServeDeployment<'a> {
    dataset: &'a Dataset,
    model: &'a GnnModel,
    params: ParamStore,
    parts: Partitioning,
    cfg: ServeConfig,
}

impl<'a> ServeDeployment<'a> {
    /// Validates the triple and plans the shard partitioning.
    pub fn new(
        dataset: &'a Dataset,
        model: &'a GnnModel,
        params: ParamStore,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::BadDeployment("need at least one shard".into()));
        }
        if model.dims()[0] != dataset.feature_dim() {
            return Err(ServeError::BadDeployment(format!(
                "model input width {} != dataset feature width {}",
                model.dims()[0],
                dataset.feature_dim()
            )));
        }
        if *model.dims().last().unwrap() != dataset.num_classes {
            return Err(ServeError::BadDeployment(format!(
                "model output width {} != dataset classes {}",
                model.dims().last().unwrap(),
                dataset.num_classes
            )));
        }
        // The checkpoint must carry exactly the parameters this model
        // architecture declares, at the same shapes.
        let reference = model.fresh_store();
        for (_, name, value) in reference.iter() {
            match params.find(name) {
                None => {
                    return Err(ServeError::BadDeployment(format!(
                        "checkpoint is missing parameter {name:?}"
                    )))
                }
                Some(id) => {
                    if params.value(id).shape() != value.shape() {
                        return Err(ServeError::BadDeployment(format!(
                            "parameter {name:?} shape {:?} != model shape {:?}",
                            params.value(id).shape(),
                            value.shape()
                        )));
                    }
                }
            }
        }
        if params.len() != reference.len() {
            return Err(ServeError::BadDeployment(format!(
                "checkpoint carries {} parameters, model declares {}",
                params.len(),
                reference.len()
            )));
        }
        let parts = cfg.partitioner.partition(&dataset.graph, cfg.shards);
        Ok(Self { dataset, model, params, parts, cfg })
    }

    /// The planned partitioning (shard `s` owns partition `s`, served by
    /// fabric endpoint `s + 1`).
    pub fn partitioning(&self) -> &Partitioning {
        &self.parts
    }

    /// Drives the deployment with a seeded open-loop load: queries
    /// arrive on an exponential schedule at `load.rate_qps` regardless
    /// of completion, and a saturated queue rejects.
    pub fn run_open_loop(&self, load: &OpenLoop) -> Result<ServeReport, ServeError> {
        let arrivals = load.arrivals();
        let seeds = load.seeds(self.dataset.graph.num_vertices() as u32);
        self.run_driver(move |queue, rejected| {
            let start = Instant::now();
            for (i, (offset, seed)) in arrivals.iter().zip(seeds.iter()).enumerate() {
                let sched = start + *offset;
                let now = Instant::now();
                if sched > now {
                    std::thread::sleep(sched - now);
                }
                let ticket = QueryTicket {
                    qid: i as u32,
                    seed: *seed,
                    sched,
                    enqueued: Instant::now(),
                };
                if queue.try_push(ticket).is_err() {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            arrivals.len() as u64
        })
    }

    /// Answers every seed exactly once (patient submission: retries on
    /// saturation instead of rejecting). Latency is measured from
    /// submission. This is the correctness entry point — equivalence
    /// tests compare its answers against a full-graph inference pass.
    pub fn answer_all(&self, seeds: &[u32]) -> Result<ServeReport, ServeError> {
        let seeds = seeds.to_vec();
        self.run_driver(move |queue, _rejected| {
            for (i, &seed) in seeds.iter().enumerate() {
                loop {
                    let now = Instant::now();
                    let ticket =
                        QueryTicket { qid: i as u32, seed, sched: now, enqueued: now };
                    match queue.try_push(ticket) {
                        Ok(()) => break,
                        Err(ServeError::Saturated { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(_) => return i as u64,
                    }
                }
            }
            seeds.len() as u64
        })
    }

    /// Spins up the fabric, shards, and dispatcher, runs `driver` on its
    /// own thread, and collects the report.
    fn run_driver<F>(&self, driver: F) -> Result<ServeReport, ServeError>
    where
        F: FnOnce(&SubmitQueue<QueryTicket>, &AtomicU64) -> u64 + Send,
    {
        let world = self.cfg.shards + 1;
        let fabric = Fabric::with_faults(world, self.cfg.fault.clone());
        let mut endpoints: Vec<Option<Endpoint>> =
            fabric.into_endpoints().into_iter().map(Some).collect();
        let frontend_ep = endpoints[0].take().unwrap();
        let queue = SubmitQueue::new(self.cfg.queue_capacity);
        let rejected = AtomicU64::new(0);
        let origin = Instant::now();
        let started = Instant::now();

        let result = std::thread::scope(|s| {
            let mut shard_handles = Vec::with_capacity(self.cfg.shards);
            for (w, slot) in endpoints.iter_mut().enumerate().skip(1) {
                let ep = slot.take().unwrap();
                let shard = ShardWorker {
                    deploy: self,
                    kill_at: self.cfg.fault.kill_epoch(w).map(|e| e as u32),
                };
                shard_handles.push(s.spawn(move || shard.run(ep, origin)));
            }
            let driver_handle = s.spawn(|| {
                let offered = driver(&queue, &rejected);
                queue.close();
                offered
            });

            let front = Frontend {
                cfg: &self.cfg,
                parts: &self.parts,
                queue: &queue,
                rec: MetricsRecorder::new(0, origin),
            };
            let outcome = front.dispatch(&frontend_ep);
            let offered = driver_handle.join().expect("load driver panicked");
            let mut frames = Vec::new();
            for h in shard_handles {
                frames.push(h.join().expect("shard thread panicked"));
            }
            (outcome, offered, frames)
        });
        let (outcome, offered, frames) = result;

        let (answers, frontend_frame, deaths, reroutes, lost) = outcome;
        let mut metrics = RunMetrics::new();
        metrics.absorb(frontend_frame);
        for f in frames {
            metrics.absorb(f);
        }
        let rejected = rejected.load(Ordering::Relaxed);
        if lost > 0 {
            return Err(ServeError::AllShardsLost { unanswered: lost });
        }
        let mut latencies: Vec<u64> = answers.iter().map(|a| a.latency_us).collect();
        latencies.sort_unstable();
        let wall_ms = started.elapsed().as_millis().max(1) as u64;
        let dropped = offered - rejected - answers.len() as u64;
        Ok(ServeReport {
            achieved_qps: answers.len() as f64 / (wall_ms as f64 / 1000.0),
            latencies_us: latencies,
            answers,
            rejected,
            offered,
            dropped,
            wall_ms,
            shard_deaths: deaths,
            reroutes,
            metrics,
        })
    }
}

/// Frontend state: admission queue in, batches out, replies and
/// reroutes back in.
struct Frontend<'a> {
    cfg: &'a ServeConfig,
    parts: &'a Partitioning,
    queue: &'a SubmitQueue<QueryTicket>,
    rec: MetricsRecorder,
}

struct Pending {
    seed: u32,
    sched: Instant,
    shard: usize,
    sent_at: Instant,
}

type FrontendOutcome = (Vec<Answer>, MetricsFrame, u64, u64, usize);

impl<'a> Frontend<'a> {
    /// Event loop: runs until the queue is closed+drained and every
    /// admitted query is answered (or every shard has died).
    fn dispatch(&self, ep: &Endpoint) -> FrontendOutcome {
        let shards = self.cfg.shards;
        let mut alive = vec![true; shards + 1];
        let mut pending: FxHashMap<u32, Pending> = FxHashMap::default();
        let mut answers: Vec<Answer> = Vec::new();
        let mut deaths = 0u64;
        let mut reroutes = 0u64;
        let reply_timeout = Duration::from_millis(self.cfg.reply_timeout_ms);
        let mut queue_done = false;
        // Last time each shard was heard from; a shard is only declared
        // dead when it has an overdue batch AND has gone silent — a busy
        // shard making progress on other batches is not dead.
        let mut last_heard = vec![Instant::now(); shards + 1];

        loop {
            // 1. Drain replies from every live shard.
            for w in 1..=shards {
                if !alive[w] {
                    continue;
                }
                while let Some(msg) = ep.try_recv_from(w) {
                    last_heard[w] = Instant::now();
                    if let MessageKind::Reply { qids, classes } = msg.kind {
                        for (qid, class) in qids.into_iter().zip(classes) {
                            // A reroute may produce two replies for one
                            // qid; only the first one counts.
                            if let Some(p) = pending.remove(&qid) {
                                let latency_us =
                                    p.sched.elapsed().as_micros().min(u64::MAX as u128)
                                        as u64;
                                self.rec.observe("serve.latency_us", latency_us);
                                self.rec.incr("serve.answers", 1);
                                answers.push(Answer {
                                    qid,
                                    seed: p.seed,
                                    class,
                                    latency_us,
                                });
                            } else {
                                self.rec.incr("serve.replies.stale", 1);
                            }
                        }
                    }
                }
            }

            // 2. Reply-deadline scan: declare shards with overdue
            //    batches dead and reroute their outstanding queries.
            let now = Instant::now();
            let overdue: Vec<usize> = (1..=shards)
                .filter(|&w| {
                    alive[w]
                        && now.duration_since(last_heard[w]) > reply_timeout
                        && pending
                            .values()
                            .any(|p| p.shard == w && now - p.sent_at > reply_timeout)
                })
                .collect();
            for w in overdue {
                alive[w] = false;
                deaths += 1;
                self.rec.incr("serve.deaths", 1);
            }
            let orphaned: Vec<u32> = pending
                .iter()
                .filter(|(_, p)| !alive[p.shard])
                .map(|(&qid, _)| qid)
                .collect();
            if !orphaned.is_empty() {
                reroutes += orphaned.len() as u64;
                self.rec.incr("serve.reroutes", orphaned.len() as u64);
                let batch: Vec<(u32, u32)> =
                    orphaned.iter().map(|qid| (*qid, pending[qid].seed)).collect();
                self.route(ep, &batch, &mut alive, &mut pending, &mut deaths);
            }

            if !alive[1..=shards].iter().any(|&a| a) {
                // Nobody left to answer; shut down and report the loss.
                let lost = pending.len();
                return (answers, self.finish(ep), deaths, reroutes, lost);
            }

            // 3. Admit a batch when under the inflight cap.
            self.rec.observe("serve.queue.depth", self.queue.len() as u64);
            if pending.len() < self.cfg.inflight_cap {
                let first = self
                    .queue
                    .pop_deadline(Instant::now() + Duration::from_millis(1));
                match first {
                    Ok(Some(t0)) => {
                        let mut batch = vec![t0];
                        let window_end = Instant::now()
                            + Duration::from_micros(self.cfg.batch_window_us);
                        while batch.len() < self.cfg.batch_max
                            && Instant::now() < window_end
                        {
                            match self.queue.try_pop() {
                                Some(t) => batch.push(t),
                                None => std::thread::sleep(Duration::from_micros(20)),
                            }
                        }
                        self.rec.incr("serve.queries", batch.len() as u64);
                        self.rec.incr("serve.batches", 1);
                        self.rec.observe("serve.batch.size", batch.len() as u64);
                        let now = Instant::now();
                        for t in &batch {
                            self.rec.observe(
                                "serve.queue.wait_us",
                                (now - t.enqueued).as_micros() as u64,
                            );
                            pending.insert(
                                t.qid,
                                Pending {
                                    seed: t.seed,
                                    sched: t.sched,
                                    shard: 0, // assigned by route()
                                    sent_at: now,
                                },
                            );
                        }
                        let pairs: Vec<(u32, u32)> =
                            batch.iter().map(|t| (t.qid, t.seed)).collect();
                        self.route(ep, &pairs, &mut alive, &mut pending, &mut deaths);
                    }
                    Ok(None) => {
                        // Closed and drained: just await outstanding
                        // replies without spinning the lock.
                        queue_done = true;
                        if !pending.is_empty() {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    Err(()) => {}
                }
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }

            if queue_done && pending.is_empty() {
                return (answers, self.finish(ep), deaths, reroutes, 0);
            }
        }
    }

    /// Groups `(qid, seed)` pairs by owning shard (falling back to the
    /// least-loaded survivor when the owner is dead) and ships them.
    /// Send failures mark the target dead and re-enter routing.
    fn route(
        &self,
        ep: &Endpoint,
        pairs: &[(u32, u32)],
        alive: &mut [bool],
        pending: &mut FxHashMap<u32, Pending>,
        deaths: &mut u64,
    ) {
        let shards = self.cfg.shards;
        let mut todo: Vec<(u32, u32)> = pairs.to_vec();
        while !todo.is_empty() {
            let mut by_shard: FxHashMap<usize, (Vec<u32>, Vec<u32>)> =
                FxHashMap::default();
            let mut load_of = vec![0usize; shards + 1];
            for p in pending.values() {
                if p.shard > 0 {
                    load_of[p.shard] += 1;
                }
            }
            for &(qid, seed) in &todo {
                let owner = self.parts.owner(seed) + 1;
                let target = if alive[owner] {
                    owner
                } else {
                    match (1..=shards).filter(|&w| alive[w]).min_by_key(|&w| load_of[w])
                    {
                        Some(w) => w,
                        None => return, // caller notices no shard is alive
                    }
                };
                load_of[target] += 1;
                let entry = by_shard.entry(target).or_default();
                entry.0.push(qid);
                entry.1.push(seed);
            }
            todo.clear();
            let now = Instant::now();
            for (w, (qids, verts)) in by_shard {
                for qid in &qids {
                    if let Some(p) = pending.get_mut(qid) {
                        p.shard = w;
                        p.sent_at = now;
                    }
                }
                match ep.send(w, MessageKind::Query { qids: qids.clone(), verts }) {
                    Ok(_) => {}
                    Err(_) => {
                        // Shard already gone: mark it and re-route these.
                        if alive[w] {
                            alive[w] = false;
                            *deaths += 1;
                            self.rec.incr("serve.deaths", 1);
                        }
                        self.rec.incr("serve.reroutes", qids.len() as u64);
                        for qid in qids {
                            let seed = pending[&qid].seed;
                            todo.push((qid, seed));
                        }
                    }
                }
            }
        }
    }

    /// Broadcasts shutdown, folds fabric stats, and closes the frame.
    fn finish(&self, ep: &Endpoint) -> MetricsFrame {
        for w in 1..=self.cfg.shards {
            let _ = ep.send(w, MessageKind::Control(CTRL_SHUTDOWN));
        }
        export_net_stats(&self.rec, ep);
        self.rec.finish()
    }
}

/// Per-peer link health a shard carries across fetches: circuit
/// breakers plus the observed peer-fetch latency distribution the
/// hedge delay is derived from.
struct PeerHealth {
    breakers: Vec<CircuitBreaker>,
    /// Ring of recent successful peer-fetch latencies, µs.
    fetch_lat_us: VecDeque<u64>,
}

/// Latency samples kept for the hedge-delay quantile.
const HEDGE_SAMPLES: usize = 256;
/// Samples needed before the p99 estimate replaces the cold-start
/// hedge delay.
const HEDGE_MIN_SAMPLES: usize = 16;

impl PeerHealth {
    fn new(world: usize, cfg: &ServeConfig) -> Self {
        // Cooldown = one fetch deadline: a flapped link gets re-probed
        // about once per would-be fetch, so it closes soon after healing.
        let breakers = (0..world)
            .map(|_| CircuitBreaker::new(2, Duration::from_millis(cfg.fetch_timeout_ms)))
            .collect();
        PeerHealth { breakers, fetch_lat_us: VecDeque::new() }
    }

    fn observe_fetch(&mut self, lat_us: u64) {
        if self.fetch_lat_us.len() == HEDGE_SAMPLES {
            self.fetch_lat_us.pop_front();
        }
        self.fetch_lat_us.push_back(lat_us);
    }

    /// The hedge delay, µs: 8x the observed p99 peer-fetch latency
    /// (generous headroom so healthy links essentially never lose the
    /// race), clamped to at most half the fetch deadline. Before enough
    /// samples exist, half the fetch deadline.
    fn hedge_delay_us(&self, cfg: &ServeConfig) -> u64 {
        let half_deadline = cfg.fetch_timeout_ms.saturating_mul(1000) / 2;
        if self.fetch_lat_us.len() < HEDGE_MIN_SAMPLES {
            return half_deadline.max(1);
        }
        let mut sorted: Vec<u64> = self.fetch_lat_us.iter().copied().collect();
        sorted.sort_unstable();
        let p99 = load::percentile_us(&sorted, 99.0);
        p99.saturating_mul(8).clamp(5_000.min(half_deadline.max(1)), half_deadline.max(1))
    }

    /// Folds breaker lifetime counters into the shard's frame, flagging
    /// breakers left Open whose peer is neither killed nor currently
    /// severed (`net.breaker.stuck_open` — the probe machinery failed).
    fn export(&self, rec: &MetricsRecorder, ep: &Endpoint) {
        let fault = ep.faults();
        let epoch = ep.epoch();
        let now_ms = ep.link_now_ms();
        let me = ep.id();
        let mut stuck = 0u64;
        let mut opens = 0u64;
        let mut closes = 0u64;
        let mut half_opens = 0u64;
        let mut fast_fails = 0u64;
        for (peer, br) in self.breakers.iter().enumerate() {
            let st = br.stats();
            opens += st.opens;
            closes += st.closes;
            half_opens += st.half_opens;
            fast_fails += st.fast_fails;
            if br.state() == BreakerState::Open
                && fault.kill_epoch(peer).is_none()
                && !fault.link_severed(epoch, me, peer, now_ms)
            {
                stuck += 1;
            }
        }
        if opens > 0 {
            rec.incr("net.breaker.opens", opens);
        }
        if closes > 0 {
            rec.incr("net.breaker.closes", closes);
        }
        if half_opens > 0 {
            rec.incr("net.breaker.half_opens", half_opens);
        }
        if fast_fails > 0 {
            rec.incr("net.breaker.fast_fails", fast_fails);
        }
        if stuck > 0 {
            rec.incr("net.breaker.stuck_open", stuck);
        }
    }
}

/// One shard worker: owns a partition, answers inference batches from
/// the frontend and layer-0 feature fetches from peers.
struct ShardWorker<'a, 'b> {
    deploy: &'a ServeDeployment<'b>,
    /// Kill-fault trigger: die upon receiving a batch whose max query id
    /// reaches this threshold.
    kill_at: Option<u32>,
}

impl ShardWorker<'_, '_> {
    fn run(&self, ep: Endpoint, origin: Instant) -> MetricsFrame {
        let me = ep.id();
        let rec = MetricsRecorder::new(me, origin);
        let mut cache = FeatureCache::new(self.deploy.cfg.cache_rows);
        let mut health = PeerHealth::new(ep.world(), &self.deploy.cfg);
        loop {
            let mut worked = false;
            // Frontend traffic: inference batches and shutdown.
            if let Some(msg) = ep.try_recv_from(0) {
                worked = true;
                match msg.kind {
                    MessageKind::Query { qids, verts } => {
                        if let Some(at) = self.kill_at {
                            if qids.iter().any(|&q| q >= at) {
                                // Simulated crash: drop the batch and the
                                // endpoint; peers see PeerDisconnected.
                                rec.incr("serve.shard.killed", 1);
                                export_cache_stats(&rec, &cache);
                                export_net_stats(&rec, &ep);
                                health.export(&rec, &ep);
                                return rec.finish();
                            }
                        }
                        let t0 = Instant::now();
                        let classes = self.answer_batch(
                            &ep,
                            &rec,
                            &mut cache,
                            &mut health,
                            &verts,
                        );
                        rec.incr("serve.shard.queries", qids.len() as u64);
                        rec.incr("serve.shard.batches", 1);
                        rec.observe(
                            "serve.shard.latency_us",
                            t0.elapsed().as_micros() as u64,
                        );
                        if ep.send(0, MessageKind::Reply { qids, classes }).is_err() {
                            break; // frontend gone — run is over
                        }
                        // Degrade, don't die: when the process-wide tensor
                        // pool is past its pressure threshold, halve the
                        // cache rather than compete with training for the
                        // remaining budget. Misses repopulate after heal.
                        if ns_tensor::pool::under_pressure() && cache.len() > 1 {
                            cache.shed_to(cache.len() / 2);
                        }
                    }
                    MessageKind::Control(v) if v == CTRL_SHUTDOWN => break,
                    _ => {}
                }
            }
            // Peer traffic: feature-fetch requests.
            for src in 1..ep.world() {
                if src == me {
                    continue;
                }
                if let Some(msg) = ep.try_recv_from(src) {
                    worked = true;
                    if let MessageKind::Query { qids, verts } = msg.kind {
                        if qids.is_empty() {
                            self.serve_fetch(&ep, &rec, src, &verts);
                        }
                    }
                }
            }
            if !worked {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        export_cache_stats(&rec, &cache);
        export_net_stats(&rec, &ep);
        health.export(&rec, &ep);
        rec.finish()
    }

    /// Answers a peer's layer-0 feature fetch with a `Rows` reply.
    fn serve_fetch(&self, ep: &Endpoint, rec: &MetricsRecorder, dst: usize, verts: &[u32]) {
        let features = &self.deploy.dataset.features;
        let d = self.deploy.dataset.feature_dim();
        let mut data = Vec::with_capacity(verts.len() * d);
        for &v in verts {
            data.extend_from_slice(features.row(v as usize));
        }
        rec.incr("serve.peer.serves", 1);
        rec.incr("serve.peer.rows_served", verts.len() as u64);
        // Best-effort: the requester may have fallen back already.
        let _ = ep.send(
            dst,
            MessageKind::Rows { layer: 0, ids: verts.to_vec(), cols: d as u32, data },
        );
    }

    /// Computes exact predictions for `seeds` by running the model over
    /// the seeds' `L`-hop in-closure sub-topology.
    fn answer_batch(
        &self,
        ep: &Endpoint,
        rec: &MetricsRecorder,
        cache: &mut FeatureCache,
        health: &mut PeerHealth,
        seeds: &[u32],
    ) -> Vec<u32> {
        let model = self.deploy.model;
        let graph = &self.deploy.dataset.graph;
        let hops = model.num_layers();
        let closure = khop_in_closure(graph, seeds, hops);
        // cum[h] = union of closure layers 0..=h: the vertex set whose
        // layer-(L-h) representations the forward computes. Cumulative
        // union (rather than the raw closure layer) guarantees each
        // destination's own input row is present for self terms.
        let mut cum: Vec<Vec<u32>> = Vec::with_capacity(hops + 1);
        cum.push(closure.layers[0].clone());
        for h in 1..=hops {
            let mut u = cum[h - 1].clone();
            u.extend_from_slice(&closure.layers[h]);
            u.sort_unstable();
            u.dedup();
            cum.push(u);
        }
        rec.incr("serve.shard.closure_rows", cum[hops].len() as u64);

        let x = self.gather_features(ep, rec, cache, health, &cum[hops]);
        let mut h = x;
        for lz in 0..hops {
            let src_set = &cum[hops - lz];
            let dst_set = &cum[hops - 1 - lz];
            let row_of = |v: u32| -> u32 {
                src_set.binary_search(&v).expect("closure invariant: source present")
                    as u32
            };
            let lists: Vec<Vec<(u32, f32)>> = dst_set
                .iter()
                .map(|&v| {
                    graph
                        .in_neighbors(v)
                        .iter()
                        .zip(graph.in_weights(v))
                        .map(|(&u, &w)| (row_of(u), w))
                        .collect()
                })
                .collect();
            let dst_in_rows: Vec<u32> = dst_set.iter().map(|&v| row_of(v)).collect();
            let topo = LayerTopology::from_adjacency(src_set.len(), &lists, dst_in_rows);
            let run = model.layer(lz).forward(&self.deploy.params, &topo, h);
            h = run.output().clone();
        }
        // cum[0] is the sorted, deduped seed set; map each query seed to
        // its row.
        let preds = h.argmax_rows();
        seeds
            .iter()
            .map(|s| {
                let row = cum[0].binary_search(s).expect("seed row present");
                preds[row] as u32
            })
            .collect()
    }

    /// Builds the `|verts| x d` layer-0 input matrix: owned rows are
    /// read locally, foreign rows come from the LRU cache, a hedged
    /// peer fetch, or (when the peer's circuit breaker is open, the
    /// mirror wins the hedge race, or the fetch deadline passes) the
    /// replicated feature mirror behind a modeled slow-path penalty.
    fn gather_features(
        &self,
        ep: &Endpoint,
        rec: &MetricsRecorder,
        cache: &mut FeatureCache,
        health: &mut PeerHealth,
        verts: &[u32],
    ) -> Tensor {
        let my_part = ep.id() - 1;
        let dataset = self.deploy.dataset;
        let parts = &self.deploy.parts;
        let d = dataset.feature_dim();
        let mut data = vec![0f32; verts.len() * d];
        let mut wants: FxHashMap<usize, Vec<(usize, u32)>> = FxHashMap::default();
        let mut local = 0u64;
        for (i, &v) in verts.iter().enumerate() {
            let owner = parts.owner(v);
            if owner == my_part {
                data[i * d..(i + 1) * d].copy_from_slice(dataset.features.row(v as usize));
                local += 1;
            } else if let Some(row) = cache.lookup(v) {
                data[i * d..(i + 1) * d].copy_from_slice(row);
            } else {
                wants.entry(owner + 1).or_default().push((i, v));
            }
        }
        rec.incr("serve.rows.local", local);

        for (peer, slots) in wants {
            let want_ids: Vec<u32> = slots.iter().map(|&(_, v)| v).collect();
            let fetched = if health.breakers[peer].allow() {
                self.fetch_rows_hedged(ep, rec, peer, &want_ids, health)
            } else {
                // Open breaker: the link is known-bad; go straight to
                // the mirror without burning a fetch deadline. The
                // cold-store penalty still applies.
                std::thread::sleep(Duration::from_micros(
                    self.deploy.cfg.slow_path_us,
                ));
                None
            };
            match fetched {
                Some(rows) => {
                    rec.incr("serve.rows.fetched", want_ids.len() as u64);
                    for ((i, v), row) in slots.into_iter().zip(rows) {
                        data[i * d..(i + 1) * d].copy_from_slice(&row);
                        cache.insert(v, row);
                    }
                }
                None => {
                    // Owner unreachable (or the mirror won the hedge):
                    // read the replicated mirror. Any cold-store penalty
                    // was already charged where the fetch gave up.
                    rec.incr("serve.rows.fallback", want_ids.len() as u64);
                    rec.incr("serve.fallback.bursts", 1);
                    for (i, v) in slots {
                        data[i * d..(i + 1) * d]
                            .copy_from_slice(dataset.features.row(v as usize));
                        cache.insert(v, dataset.features.row(v as usize).to_vec());
                    }
                }
            }
        }
        Tensor::from_vec(verts.len(), d, data)
    }

    /// One hedged peer fetch: ships the want-list, then polls for the
    /// `Rows` reply while *also servicing incoming fetches* — two
    /// shards fetching from each other must not deadlock. After a
    /// p99-derived hedge delay with no reply, a mirror read is started
    /// in parallel and the first side to finish wins
    /// (`serve.hedge.{issued,wins}`). Returns `None` when the caller
    /// should read the mirror: the mirror won the race, the peer is
    /// unreachable, or the fetch budget ran out.
    ///
    /// Breaker bookkeeping: a matching peer reply records a success;
    /// a hedge loss, deadline, or dead link records a failure — so a
    /// black-holed link opens the breaker after consecutive misses even
    /// though every query is still answered from the mirror.
    fn fetch_rows_hedged(
        &self,
        ep: &Endpoint,
        rec: &MetricsRecorder,
        peer: usize,
        want: &[u32],
        health: &mut PeerHealth,
    ) -> Option<Vec<Vec<f32>>> {
        rec.incr("serve.fetch.requests", 1);
        if ep
            .send(peer, MessageKind::Query { qids: Vec::new(), verts: want.to_vec() })
            .is_err()
        {
            health.breakers[peer].record_failure();
            std::thread::sleep(Duration::from_micros(self.deploy.cfg.slow_path_us));
            return None;
        }
        let t0 = Instant::now();
        let budget = Budget::from_ms(self.deploy.cfg.fetch_timeout_ms);
        let hedge_after = Duration::from_micros(health.hedge_delay_us(&self.deploy.cfg));
        let mut mirror_ready: Option<Instant> = None;
        let d = self.deploy.dataset.feature_dim();
        loop {
            if let Some(msg) = ep.try_recv_from(peer) {
                match msg.kind {
                    MessageKind::Rows { ids, data, .. } if ids == want => {
                        let rows =
                            data.chunks(d).map(|c| c.to_vec()).collect::<Vec<_>>();
                        if rows.len() == want.len() {
                            health.breakers[peer].record_success();
                            health.observe_fetch(t0.elapsed().as_micros() as u64);
                            return Some(rows);
                        }
                        health.breakers[peer].record_failure();
                        std::thread::sleep(Duration::from_micros(
                            self.deploy.cfg.slow_path_us,
                        ));
                        return None;
                    }
                    MessageKind::Rows { .. } => {
                        // Stale reply to an earlier fetch this shard
                        // already abandoned — a healed flap can deliver
                        // it long after the hedge won. Discard and keep
                        // waiting for the answer to *this* want-list.
                        rec.incr("serve.fetch.stale", 1);
                    }
                    MessageKind::Query { qids, verts } if qids.is_empty() => {
                        // The peer is fetching from us at the same time.
                        self.serve_fetch(ep, rec, peer, &verts);
                    }
                    _ => {}
                }
            }
            // Service other peers' fetches so a fetch cycle across three
            // or more shards cannot wedge either.
            for src in 1..ep.world() {
                if src == ep.id() || src == peer {
                    continue;
                }
                if let Some(msg) = ep.try_recv_from(src) {
                    if let MessageKind::Query { qids, verts } = msg.kind {
                        if qids.is_empty() {
                            self.serve_fetch(ep, rec, src, &verts);
                        }
                    }
                }
            }
            if mirror_ready.is_none() && t0.elapsed() >= hedge_after {
                // Tail-latency hedge: start the mirror read racing the
                // peer reply instead of waiting out the full deadline.
                rec.incr("serve.hedge.issued", 1);
                mirror_ready = Some(
                    Instant::now()
                        + Duration::from_micros(self.deploy.cfg.slow_path_us),
                );
            }
            if mirror_ready.is_some_and(|ready| Instant::now() >= ready) {
                rec.incr("serve.hedge.wins", 1);
                health.breakers[peer].record_failure();
                return None;
            }
            if budget.exhausted() {
                rec.incr("serve.fetch.timeouts", 1);
                rec.incr("net.deadline.exhausted", 1);
                health.breakers[peer].record_failure();
                std::thread::sleep(Duration::from_micros(self.deploy.cfg.slow_path_us));
                return None;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

/// Copies an endpoint's traffic counters into `net.*` recorder series —
/// the serving twin of the trainer's exporter (which is private to
/// `exec`), covering the serve-path message kinds.
/// Folds the shard's feature-cache meters into its metric frame.
fn export_cache_stats(rec: &MetricsRecorder, cache: &FeatureCache) {
    rec.incr("serve.cache.hits", cache.hits);
    rec.incr("serve.cache.misses", cache.misses);
    rec.incr("serve.cache.evictions", cache.evictions);
    rec.incr("serve.cache.shed", cache.sheds);
}

fn export_net_stats(rec: &MetricsRecorder, ep: &Endpoint) {
    let stats = ep.stats();
    rec.incr("net.sent.msgs", stats.sent_msgs);
    rec.incr("net.sent.bytes", stats.sent_bytes);
    for (k, name) in KIND_NAMES.iter().enumerate() {
        if stats.sent_msgs_by_kind[k] > 0 {
            rec.incr(&format!("net.sent.msgs.{name}"), stats.sent_msgs_by_kind[k]);
            rec.incr(&format!("net.sent.bytes.{name}"), stats.sent_bytes_by_kind[k]);
        }
    }
    if stats.crc_failures > 0 {
        rec.incr("integrity.crc_fail", stats.crc_failures);
    }
    if stats.rereads > 0 {
        rec.incr("integrity.reread", stats.rereads);
    }
    if stats.dups_suppressed > 0 {
        rec.incr("net.recv.dups_suppressed", stats.dups_suppressed);
    }
    if stats.severed_msgs > 0 {
        rec.incr("net.fault.severed", stats.severed_msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_gnn::inference::infer;
    use ns_gnn::{GnnModel, ModelKind};
    use ns_graph::datasets::by_name;

    #[test]
    fn submit_queue_rejects_when_full_and_never_blocks() {
        let q: SubmitQueue<u32> = SubmitQueue::new(3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let t0 = Instant::now();
        let err = q.try_push(99).unwrap_err();
        assert_eq!(err, ServeError::Saturated { capacity: 3 });
        // The rejection path must be immediate — this is the guarantee
        // that a saturated deployment cannot stall the fabric thread.
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "try_push blocked for {:?}",
            t0.elapsed()
        );
        assert_eq!(q.len(), 3);
        // Draining one slot re-opens admission.
        assert_eq!(q.try_pop(), Some(0));
        q.try_push(99).unwrap();
    }

    #[test]
    fn submit_queue_close_drains_then_signals_done() {
        let q: SubmitQueue<u32> = SubmitQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(ServeError::Closed));
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(q.pop_deadline(deadline), Ok(Some(1)));
        assert_eq!(q.pop_deadline(deadline), Ok(None));
    }

    #[test]
    fn submit_queue_pop_times_out_when_empty_and_open() {
        let q: SubmitQueue<u32> = SubmitQueue::new(8);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_deadline(deadline), Err(()));
    }

    #[test]
    fn feature_cache_meters_hits_misses_and_evicts_lru() {
        let mut c = FeatureCache::new(2);
        assert!(c.lookup(1).is_none());
        c.insert(1, vec![1.0]);
        c.insert(2, vec![2.0]);
        assert_eq!(c.lookup(1).unwrap(), &[1.0]); // 1 is now most recent
        c.insert(3, vec![3.0]); // evicts 2, the least recent
        assert!(c.lookup(2).is_none());
        assert_eq!(c.lookup(1).unwrap(), &[1.0]);
        assert_eq!(c.lookup(3).unwrap(), &[3.0]);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn feature_cache_zero_capacity_disables_caching() {
        let mut c = FeatureCache::new(0);
        c.insert(1, vec![1.0]);
        assert!(c.lookup(1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn feature_cache_sheds_lru_rows_under_pressure() {
        let mut c = FeatureCache::new(8);
        for v in 0..8u32 {
            c.insert(v, vec![v as f32]);
        }
        assert_eq!(c.lookup(0).unwrap(), &[0.0]); // 0 becomes most recent
        let dropped = c.shed_to(4);
        assert_eq!(dropped, 4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.sheds, 4);
        // The refreshed row survived; the stalest ones went first.
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(1).is_none());
        // Shedding to the current size (or above) is a no-op.
        assert_eq!(c.shed_to(10), 0);
    }

    fn cora_deploy() -> (Dataset, GnnModel) {
        let ds = by_name("cora").unwrap().materialize(0.15, 9);
        let model =
            GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 16, ds.num_classes, 4);
        (ds, model)
    }

    #[test]
    fn deployment_rejects_mismatched_params() {
        let (ds, model) = cora_deploy();
        let wrong = GnnModel::two_layer(ModelKind::Gcn, ds.feature_dim(), 8, ds.num_classes, 4);
        let err = ServeDeployment::new(&ds, &model, wrong.fresh_store(), ServeConfig::default())
            .err()
            .expect("shape mismatch must be rejected");
        assert!(matches!(err, ServeError::BadDeployment(_)), "got {err:?}");
    }

    #[test]
    fn deployment_rejects_zero_shards() {
        let (ds, model) = cora_deploy();
        let cfg = ServeConfig { shards: 0, ..ServeConfig::default() };
        assert!(ServeDeployment::new(&ds, &model, model.fresh_store(), cfg).is_err());
    }

    #[test]
    fn sharded_answers_match_full_graph_inference() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        let reference = infer(&ds, &model, &store);
        let cfg = ServeConfig { shards: 3, cache_rows: 512, ..ServeConfig::default() };
        let deploy = ServeDeployment::new(&ds, &model, store, cfg).unwrap();
        // Seeds spread across all three partitions, with repeats.
        let n = ds.graph.num_vertices() as u32;
        let seeds: Vec<u32> = (0..96u32).map(|i| (i * 131) % n).collect();
        let report = deploy.answer_all(&seeds).unwrap();
        assert_eq!(report.answers.len(), seeds.len());
        assert_eq!(report.dropped, 0);
        for a in &report.answers {
            assert_eq!(
                a.class as usize, reference.predictions[a.seed as usize],
                "query {} seed {} diverged from full-graph inference",
                a.qid, a.seed
            );
        }
        // The serving path exercised remote rows: either fetched over
        // the fabric or already cached.
        let fetched = report.metrics.total_counter("serve.rows.fetched");
        let local = report.metrics.total_counter("serve.rows.local");
        assert!(local > 0);
        assert!(fetched > 0, "3-way sharding must fetch foreign rows");
        assert_eq!(report.metrics.total_counter("serve.rows.fallback"), 0);
    }

    #[test]
    fn open_loop_meters_latency_and_never_loses_queries() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        let deploy =
            ServeDeployment::new(&ds, &model, store, ServeConfig::default()).unwrap();
        let load = OpenLoop { queries: 200, rate_qps: 2000.0, seed: 7, zipf_s: 0.9 };
        let report = deploy.run_open_loop(&load).unwrap();
        assert_eq!(report.offered, 200);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.answers.len() as u64 + report.rejected, 200);
        assert!(report.percentile_us(50.0) > 0);
        assert!(report.percentile_us(99.9) >= report.percentile_us(50.0));
        assert!(report.metrics.total_counter("serve.batches") > 0);
    }

    #[test]
    fn saturated_deployment_rejects_instead_of_blocking() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        // A tiny queue + tiny inflight cap at a high offered rate must
        // produce rejects while every admitted query still completes.
        let cfg = ServeConfig {
            queue_capacity: 4,
            inflight_cap: 2,
            batch_max: 2,
            ..ServeConfig::default()
        };
        let deploy = ServeDeployment::new(&ds, &model, store, cfg).unwrap();
        let load = OpenLoop { queries: 400, rate_qps: 50_000.0, seed: 3, zipf_s: 0.9 };
        let report = deploy.run_open_loop(&load).unwrap();
        assert!(report.rejected > 0, "overload must surface as rejects");
        assert_eq!(report.dropped, 0, "admitted queries must all complete");
        assert_eq!(report.answers.len() as u64 + report.rejected, 400);
    }

    #[test]
    fn killed_shard_degrades_latency_but_drops_nothing() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        let mut fault = FaultPlan::default();
        // Shard at endpoint 2 dies when it sees query id >= 40.
        fault.push_spec("kill:w2@e40").unwrap();
        let cfg = ServeConfig {
            shards: 2,
            reply_timeout_ms: 150,
            fault,
            ..ServeConfig::default()
        };
        let deploy = ServeDeployment::new(&ds, &model, store, cfg).unwrap();
        let n = ds.graph.num_vertices() as u32;
        let seeds: Vec<u32> = (0..160u32).map(|i| (i * 137) % n).collect();
        let report = deploy.answer_all(&seeds).unwrap();
        assert_eq!(report.dropped, 0, "shard loss must not drop queries");
        assert_eq!(report.answers.len(), seeds.len());
        assert_eq!(report.shard_deaths, 1);
        assert!(report.reroutes > 0, "orphaned queries must be rerouted");
        // Post-death queries owned by the dead shard still answer, via
        // the survivor's mirror fallback.
        assert!(report.metrics.total_counter("serve.rows.fallback") > 0);
    }

    #[test]
    fn flapped_link_hedges_to_mirror_and_drops_nothing() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        let reference = infer(&ds, &model, &store);
        let mut fault = FaultPlan::default();
        // The w1-w2 link flaps slowly, starting down: the 200ms down
        // windows dwarf the 100ms fetch deadline, so fetches caught in
        // one are answered by the hedged mirror read long before the
        // held peer reply finally arrives. Cache off so every batch
        // pays a real fetch.
        fault.push_spec("flap:w1-w2:400ms:0.5").unwrap();
        let cfg = ServeConfig { shards: 2, cache_rows: 0, fault, ..ServeConfig::default() };
        let deploy = ServeDeployment::new(&ds, &model, store, cfg).unwrap();
        let n = ds.graph.num_vertices() as u32;
        let seeds: Vec<u32> = (0..160u32).map(|i| (i * 137) % n).collect();
        let report = deploy.answer_all(&seeds).unwrap();
        assert_eq!(report.dropped, 0, "flapping link must not drop queries");
        assert_eq!(report.answers.len(), seeds.len());
        for a in &report.answers {
            assert_eq!(
                a.class as usize, reference.predictions[a.seed as usize],
                "query {} seed {} diverged under a flapping link",
                a.qid, a.seed
            );
        }
        assert!(
            report.metrics.total_counter("serve.hedge.issued") > 0,
            "down-window fetches must issue hedges"
        );
        assert!(
            report.metrics.total_counter("serve.hedge.wins") > 0,
            "the mirror must win hedges against a held link"
        );
        // Hedge wins are mirror answers: metered as fallback, never lost.
        assert!(report.metrics.total_counter("serve.rows.fallback") > 0);
    }

    #[test]
    fn partitioned_peer_opens_breaker_and_serves_from_mirror() {
        let (ds, model) = cora_deploy();
        let store = model.fresh_store();
        let reference = infer(&ds, &model, &store);
        let mut fault = FaultPlan::default();
        // Serving never advances the fabric epoch past 0, so this window
        // black-holes the w1-w2 link for the entire run.
        fault.push_spec("partition:w1-w2@e0-e1").unwrap();
        let cfg = ServeConfig { shards: 2, cache_rows: 0, fault, ..ServeConfig::default() };
        let deploy = ServeDeployment::new(&ds, &model, store, cfg).unwrap();
        let n = ds.graph.num_vertices() as u32;
        let seeds: Vec<u32> = (0..160u32).map(|i| (i * 137) % n).collect();
        let report = deploy.answer_all(&seeds).unwrap();
        assert_eq!(report.dropped, 0, "partition must not drop queries");
        assert_eq!(report.answers.len(), seeds.len());
        for a in &report.answers {
            assert_eq!(
                a.class as usize, reference.predictions[a.seed as usize],
                "query {} seed {} diverged under a partitioned link",
                a.qid, a.seed
            );
        }
        // Consecutive black-holed fetches latch the breaker; everything
        // after comes from the mirror.
        assert!(report.metrics.total_counter("net.breaker.opens") >= 1);
        assert!(report.metrics.total_counter("serve.rows.fallback") > 0);
        assert_eq!(
            report.metrics.total_counter("serve.rows.fetched"),
            0,
            "a severed link cannot complete a peer fetch"
        );
        // The breaker is *correctly* open against a still-severed link —
        // the stuck-open meter must stay silent.
        assert_eq!(report.metrics.total_counter("net.breaker.stuck_open"), 0);
    }
}

//! Device-memory accounting.
//!
//! Our graphs are materialized at a scale factor `s << 1` of the paper's
//! datasets; to reproduce the paper's out-of-memory behaviour (DepCache
//! and ROC OOM on several graphs, PyG OOMs on anything large, caching all
//! dependencies OOMs for GAT on Orkut) the accountant *projects* a plan's
//! per-worker working set back to full scale — every vertex- and
//! edge-proportional term is divided by `s` — and compares against the
//! modeled device capacity.

use crate::error::{Result, RuntimeError};
use crate::plan::WorkerPlan;

const F32: u64 = 4;

/// Per-worker device working set of a plan, in bytes, at the *materialized*
/// scale. `dims` are the model's layer widths `[in, hidden..., out]` and
/// `edge_widths[lz]` the floats an optimized backend materializes per edge
/// at layer `lz` (see `GnnLayer::edge_tensor_width`; systems that expand
/// every message — the DGL/PyG-like baselines — pass the full input
/// width instead).
///
/// `chunked_edges` reflects NeutronStar's chunk-based processing: edge
/// tensors are materialized one source-chunk at a time, so only the
/// largest chunk counts. Without it (the DepCache/whole-graph designs)
/// the full edge tensor of every layer resides on the device at once.
pub fn plan_device_bytes(
    plan: &WorkerPlan,
    dims: &[usize],
    edge_widths: &[usize],
    chunked_edges: bool,
    scale: f64,
) -> u64 {
    let mut total = if chunked_edges {
        // NeutronStar streams feature chunks from host memory (§5.8:
        // "caching intermediate result in host memory"); the device only
        // ever holds the chunk in flight, counted below.
        0
    } else {
        plan.feature_rows.len() as u64 * dims[0] as u64 * F32
    };
    for (lz, lp) in plan.layers.iter().enumerate() {
        let d_in = dims[lz] as u64;
        let d_out = dims[lz + 1] as u64;
        // Output activations (kept for backward) + their gradients.
        total += 2 * lp.compute.len() as u64 * d_out * F32;
        let edges = lp.topo.num_edges() as u64;
        if chunked_edges {
            // Inputs arrive one source chunk at a time; spilled to host
            // between uses. Device holds the largest chunk's rows and its
            // edge tensors.
            let local = lp.local_src.len();
            let max_peer = lp.recv_ids.iter().map(Vec::len).max().unwrap_or(0);
            let chunk_rows = local.max(max_peer) as u64;
            total += 2 * chunk_rows * d_in * F32;
            let avg_deg = edges as f64 / lp.input_ids.len().max(1) as f64;
            // A peer chunk that is still too large is streamed in
            // fixed-size sub-chunks (the chunking is per-source-worker for
            // communication, but device processing batches edges freely).
            // The bound is a full-scale quantity, so apply it scaled.
            const SUBCHUNK_EDGES: f64 = 8_000_000.0;
            let edge_rows = ((chunk_rows as f64 * avg_deg).ceil() as u64)
                .min(edges)
                .min((SUBCHUNK_EDGES * scale).ceil() as u64);
            total += 2 * edge_rows * edge_widths[lz] as u64 * F32;
            total += edge_rows * 8;
        } else {
            // Whole-layer residency: all input activations + gradients,
            // full edge tensors, full index.
            total += 2 * lp.input_ids.len() as u64 * d_in * F32;
            total += 2 * edges * edge_widths[lz] as u64 * F32;
            total += edges * 8;
        }
    }
    total
}

/// Projects `bytes_at_scale` (measured on an instance materialized at
/// `scale`) to the full published dataset size.
pub fn project_to_full_scale(bytes_at_scale: u64, scale: f64) -> u64 {
    assert!(scale > 0.0, "scale must be positive");
    (bytes_at_scale as f64 / scale) as u64
}

/// Checks that every worker's projected working set fits the device.
pub fn check_device_fit(
    what: &str,
    plans: &[WorkerPlan],
    dims: &[usize],
    edge_widths: &[usize],
    chunked_edges: bool,
    scale: f64,
    limit_bytes: u64,
) -> Result<()> {
    let worst = plans
        .iter()
        .map(|p| plan_device_bytes(p, dims, edge_widths, chunked_edges, scale))
        .max()
        .unwrap_or(0);
    let projected = project_to_full_scale(worst, scale);
    if projected > limit_bytes {
        return Err(RuntimeError::DeviceOom {
            what: what.to_string(),
            needed_bytes: projected,
            limit_bytes,
        });
    }
    Ok(())
}

/// Working set of a dense-adjacency system (the PyG-like baseline of
/// Table 4/5, which "uses the matrix, instead of the compressed matrix, to
/// store the graph"): `n^2` adjacency plus activations.
pub fn dense_adjacency_bytes(n_full: u64, dims: &[usize]) -> u64 {
    let acts: u64 = dims.iter().map(|&d| n_full * d as u64 * F32).sum();
    n_full * n_full * F32 + 2 * acts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, DepDecision};
    use ns_graph::generate::rmat;
    use ns_graph::{CsrGraph, Partitioner};

    fn plans(decision: &DepDecision) -> Vec<WorkerPlan> {
        let edges = rmat(600, 4000, (0.5, 0.2, 0.2), 9);
        let g = CsrGraph::from_edges(600, &edges, true);
        let p = Partitioner::Chunk.partition(&g, 4);
        build_plans(&g, &p, 2, decision).unwrap()
    }

    #[test]
    fn depcache_needs_more_memory_than_depcomm() {
        let dims = [64, 32, 8];
        let widths = [64, 32];
        let cache: u64 = plans(&DepDecision::CacheAll)
            .iter()
            .map(|p| plan_device_bytes(p, &dims, &widths, false, 1.0))
            .max()
            .unwrap();
        let comm: u64 = plans(&DepDecision::CommAll)
            .iter()
            .map(|p| plan_device_bytes(p, &dims, &widths, true, 1.0))
            .max()
            .unwrap();
        assert!(cache > comm, "cache {cache} vs comm {comm}");
    }

    #[test]
    fn chunking_reduces_edge_memory() {
        let dims = [64, 32, 8];
        let widths = [64, 32];
        let ps = plans(&DepDecision::CommAll);
        let full = plan_device_bytes(&ps[0], &dims, &widths, false, 1.0);
        let chunked = plan_device_bytes(&ps[0], &dims, &widths, true, 1.0);
        assert!(chunked <= full);
    }

    #[test]
    fn fused_edge_functions_need_less_memory() {
        let dims = [64, 32, 8];
        let ps = plans(&DepDecision::CacheAll);
        let fused = plan_device_bytes(&ps[0], &dims, &[1, 0], false, 1.0);
        let expanded = plan_device_bytes(&ps[0], &dims, &[64, 32], false, 1.0);
        assert!(fused < expanded);
    }

    #[test]
    fn projection_scales_inverse() {
        assert_eq!(project_to_full_scale(100, 0.01), 10_000);
        assert_eq!(project_to_full_scale(100, 1.0), 100);
    }

    #[test]
    fn oom_detection_fires_at_small_scale() {
        let dims = [64, 32, 8];
        let widths = [1, 0];
        let ps = plans(&DepDecision::CacheAll);
        // At scale 1e-6 the projection is a million-fold: must OOM on 16 GB.
        let err = check_device_fit("DepCache", &ps, &dims, &widths, false, 1e-6, 16 << 30);
        assert!(matches!(err, Err(RuntimeError::DeviceOom { .. })));
        // At scale 1 the tiny instance trivially fits.
        assert!(check_device_fit("DepCache", &ps, &dims, &widths, false, 1.0, 16 << 30).is_ok());
    }

    #[test]
    fn dense_adjacency_dominates_for_large_graphs() {
        let dims = [128, 64, 16];
        // 1M vertices: adjacency alone is 4 TB.
        let b = dense_adjacency_bytes(1_000_000, &dims);
        assert!(b > 1u64 << 40);
    }
}

//! Measured-cost feedback: turning run metrics into replanning signals.
//!
//! The probed [`CostFactors`](crate::cost::CostFactors) are static — they
//! describe the modeled cluster, not the cluster as it behaves *right
//! now*. This module closes the loop: after every checkpoint chunk the
//! trainer feeds the chunk's [`RunMetrics`] through [`peer_waits`] and
//! [`calibrate`] to obtain
//!
//! * a per-peer communication multiplier (`peer_mult[p]`): how much more
//!   expensive fetching a dependency from peer `p` currently is than the
//!   cluster median, derived from the attributed per-peer receive-wait
//!   counters (`net.recv.wait_ns.peer<k>` / `net.recv.msgs.peer<k>`), and
//! * a global `comm_factor`: the drift of the mean per-message wait
//!   relative to the run's first chunk, folded into `T_c` via
//!   [`CostFactors::with_comm_scale`](crate::cost::CostFactors::with_comm_scale).
//!
//! When the drift passes [`CostCalibration::triggers_replan`], the trainer
//! re-runs the Algorithm-4 greedy split with these inputs and
//! [`diff_decisions`] reports, per owner, how many dependencies migrated
//! between the communicated set `C_i^l` and the cached set `R_i^l` — a
//! slow peer's dependencies shift toward caching. The same wait statistics
//! drive the straggler-eviction policy ([`pick_straggler`]).

use ns_metrics::{RunMetrics, COORDINATOR};

use crate::plan::DepDecision;

/// Ceiling on any single calibration multiplier, so one wedged counter
/// cannot blow the cost model into degenerate all-cache plans.
pub const MAX_CALIBRATION: f64 = 64.0;

/// Absolute floor for straggler eviction: below this per-message wait the
/// cluster is healthy no matter what the relative spread says (5 ms).
pub const STRAGGLER_FLOOR_NS: f64 = 5_000_000.0;

/// Per-peer multiplier above which a drift replan fires.
pub const REPLAN_PEER_TRIGGER: f64 = 2.0;

/// Global comm-factor drift above which a drift replan fires.
pub const REPLAN_GLOBAL_TRIGGER: f64 = 1.5;

/// Attributed per-peer receive-wait statistics for one chunk, indexed by
/// compact worker rank.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerWaitStats {
    /// `avg_wait_ns[p]`: the robust per-message wait attributed to peer
    /// `p` — minimum across receivers of the upper-quartile wait per
    /// message from `p` (0 when `p` sent nothing); see [`peer_waits`].
    pub avg_wait_ns: Vec<f64>,
    /// Messages received from each peer, summed over receivers.
    pub msgs: Vec<u64>,
}

impl PeerWaitStats {
    /// Mean per-message wait over peers that actually sent traffic.
    pub fn mean_wait_ns(&self) -> f64 {
        let active: Vec<f64> = self
            .avg_wait_ns
            .iter()
            .zip(&self.msgs)
            .filter(|(_, &m)| m > 0)
            .map(|(&w, _)| w)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Median per-message wait over peers with traffic (0 when silent).
    pub fn median_wait_ns(&self) -> f64 {
        let mut active: Vec<f64> = self
            .avg_wait_ns
            .iter()
            .zip(&self.msgs)
            .filter(|(_, &m)| m > 0)
            .map(|(&w, _)| w)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        active.sort_by(f64::total_cmp);
        let n = active.len();
        if n % 2 == 1 {
            active[n / 2]
        } else {
            (active[n / 2 - 1] + active[n / 2]) / 2.0
        }
    }
}

/// Aggregates the executor's per-peer `net.recv.wait_ns.peer<k>`
/// histograms into a robust per-peer wait estimate. The wait is
/// *attributed to the sender*, doubly robustly: for every (receiver,
/// peer) pair the **upper-quartile** (p75) per-message wait is taken,
/// then the **minimum across receivers**. A genuine straggler delays
/// every burst it sends, so every receiver's upper quartile stays high
/// and the minimum stays high too. A healthy peer caught in the
/// straggler's BSP cascade can show inflated waits at *some* receivers,
/// but always has at least one clean observer — in particular the
/// straggler itself, which runs ahead of its own delayed sends and
/// therefore finds its peers' messages already queued — so the minimum
/// collapses back to near zero. The coordinator frame (checkpoint
/// bookkeeping) is skipped.
pub fn peer_waits(run: &RunMetrics, workers: usize) -> PeerWaitStats {
    let mut min_median = vec![f64::INFINITY; workers];
    let mut msgs = vec![0u64; workers];
    for (&w, frame) in &run.frames {
        if w == COORDINATOR {
            continue;
        }
        for (p, (av, mv)) in min_median.iter_mut().zip(msgs.iter_mut()).enumerate() {
            if p == w {
                continue;
            }
            if let Some(h) = frame.histograms.get(&format!("net.recv.wait_ns.peer{p}")) {
                if h.count > 0 {
                    *av = av.min(h.percentile(0.75) as f64);
                    *mv += h.count;
                }
            }
        }
    }
    let avg_wait_ns = min_median
        .into_iter()
        .map(|a| if a.is_finite() { a } else { 0.0 })
        .collect();
    PeerWaitStats { avg_wait_ns, msgs }
}

/// A measured correction to the probed cost factors.
#[derive(Debug, Clone, PartialEq)]
pub struct CostCalibration {
    /// Global multiplier on `T_c`: mean wait drift relative to the run's
    /// first chunk (1.0 when no baseline exists yet).
    pub comm_factor: f64,
    /// Per-owner multiplier on `T_c` for dependencies owned by that peer,
    /// relative to the cluster median (all ≥ 1; a healthy peer is 1.0).
    pub peer_mult: Vec<f64>,
    /// The chunk's mean per-message wait — the next baseline candidate.
    pub mean_wait_ns: f64,
}

impl CostCalibration {
    /// Whether the measured drift is large enough to justify re-running
    /// the Algorithm-4 split mid-training.
    pub fn triggers_replan(&self) -> bool {
        self.comm_factor >= REPLAN_GLOBAL_TRIGGER
            || self
                .peer_mult
                .iter()
                .any(|&m| m >= REPLAN_PEER_TRIGGER)
    }

    /// Largest per-peer multiplier (1.0 when empty).
    pub fn max_peer_mult(&self) -> f64 {
        self.peer_mult.iter().copied().fold(1.0, f64::max)
    }
}

/// Derives a calibration from one chunk's wait statistics.
///
/// `baseline_mean_ns` is the mean per-message wait of the run's first
/// chunk; `None` (first chunk itself) pins `comm_factor` to 1. Peers whose
/// wait sits at or below the median — and everything below the absolute
/// [`STRAGGLER_FLOOR_NS`] — calibrate to 1.0, so quiet clusters never
/// trigger spurious replans.
pub fn calibrate(stats: &PeerWaitStats, baseline_mean_ns: Option<f64>) -> CostCalibration {
    let median = stats.median_wait_ns();
    let peer_mult = stats
        .avg_wait_ns
        .iter()
        .map(|&w| {
            if w <= STRAGGLER_FLOOR_NS {
                1.0
            } else {
                (w / median.max(1.0)).clamp(1.0, MAX_CALIBRATION)
            }
        })
        .collect();
    let mean = stats.mean_wait_ns();
    let comm_factor = match baseline_mean_ns {
        Some(base) if base > 0.0 && mean > STRAGGLER_FLOOR_NS => {
            (mean / base).clamp(1.0, MAX_CALIBRATION)
        }
        _ => 1.0,
    };
    CostCalibration { comm_factor, peer_mult, mean_wait_ns: mean }
}

/// Straggler-eviction policy: the peer whose attributed wait exceeds
/// `factor` times the cluster median *and* the absolute floor. Returns the
/// compact rank of the worst offender, or `None` when everyone is within
/// tolerance.
pub fn pick_straggler(stats: &PeerWaitStats, factor: f64) -> Option<usize> {
    let median = stats.median_wait_ns();
    stats
        .avg_wait_ns
        .iter()
        .enumerate()
        .filter(|(p, &w)| {
            stats.msgs[*p] > 0 && w > STRAGGLER_FLOOR_NS && w > factor * median
        })
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(p, _)| p)
}

/// Per-owner migration counts between two dependency decisions over the
/// same world size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionDelta {
    /// `moved_to_cached[p]`: dependencies owned by peer `p` that were
    /// communicated under `old` and are cached under `new`.
    pub moved_to_cached: Vec<usize>,
    /// `moved_to_comm[p]`: the reverse migration.
    pub moved_to_comm: Vec<usize>,
}

impl DecisionDelta {
    /// Total dependencies that flipped from communicated to cached.
    pub fn total_to_cached(&self) -> usize {
        self.moved_to_cached.iter().sum()
    }

    /// Total dependencies that flipped from cached to communicated.
    pub fn total_to_comm(&self) -> usize {
        self.moved_to_comm.iter().sum()
    }
}

/// Diffs two [`DepDecision`]s over `workers` peers, attributing every
/// migrated dependency to the peer that owns it (`owner(u)`). Pure-engine
/// decisions are treated as empty/full cached sets respectively, so the
/// diff is defined across engine transitions too.
pub fn diff_decisions(
    old: &DepDecision,
    new: &DepDecision,
    workers: usize,
    num_layers: usize,
    deps: &[Vec<Vec<u32>>],
    owner: impl Fn(u32) -> usize,
) -> DecisionDelta {
    let mut delta = DecisionDelta {
        moved_to_cached: vec![0; workers],
        moved_to_comm: vec![0; workers],
    };
    for (w, worker_deps) in deps.iter().enumerate().take(workers) {
        for (lz, layer_deps) in worker_deps.iter().enumerate().take(num_layers) {
            for &u in layer_deps {
                let was = old.is_cached(w, lz, u);
                let is = new.is_cached(w, lz, u);
                if !was && is {
                    delta.moved_to_cached[owner(u)] += 1;
                } else if was && !is {
                    delta.moved_to_comm[owner(u)] += 1;
                }
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_metrics::MetricsRecorder;
    use rustc_hash::FxHashSet;
    use std::time::Instant;

    /// Builds a RunMetrics where worker `w` waited `wait[p]` ns total over
    /// `msgs[p]` messages from each peer `p` (spread uniformly, so the
    /// per-message median equals the average).
    fn run_with_waits(per_worker: &[Vec<(u64, u64)>]) -> RunMetrics {
        let origin = Instant::now();
        let mut run = RunMetrics::new();
        for (w, peers) in per_worker.iter().enumerate() {
            let rec = MetricsRecorder::new(w, origin);
            for (p, &(wait, msgs)) in peers.iter().enumerate() {
                if p == w || msgs == 0 {
                    continue;
                }
                for _ in 0..msgs {
                    rec.observe(&format!("net.recv.wait_ns.peer{p}"), wait / msgs);
                }
            }
            run.absorb(rec.finish());
        }
        run
    }

    #[test]
    fn peer_waits_attribute_to_the_sender() {
        // Workers 0 and 2 each waited 30ms over 3 msgs on peer 1;
        // everything else is instant.
        let run = run_with_waits(&[
            vec![(0, 0), (30_000_000, 3), (3_000, 3)],
            vec![(2_000, 2), (0, 0), (2_000, 2)],
            vec![(1_000, 1), (30_000_000, 3), (0, 0)],
        ]);
        let stats = peer_waits(&run, 3);
        assert_eq!(stats.msgs, vec![3, 6, 5]);
        assert!((stats.avg_wait_ns[1] - 10_000_000.0).abs() < 1.0);
        assert!(stats.avg_wait_ns[0] < 2_000.0);
        assert!(stats.avg_wait_ns[2] < 2_000.0);
    }

    #[test]
    fn straggler_calibration_and_eviction() {
        let run = run_with_waits(&[
            vec![(0, 0), (40_000_000, 4), (4_000, 4)],
            vec![(4_000, 4), (0, 0), (4_000, 4)],
            vec![(4_000, 4), (40_000_000, 4), (0, 0)],
        ]);
        let stats = peer_waits(&run, 3);
        let calib = calibrate(&stats, None);
        assert_eq!(calib.comm_factor, 1.0, "no baseline, no global drift");
        assert!(calib.peer_mult[1] > REPLAN_PEER_TRIGGER);
        assert_eq!(calib.peer_mult[0], 1.0);
        assert_eq!(calib.peer_mult[2], 1.0);
        assert!(calib.triggers_replan());
        assert_eq!(pick_straggler(&stats, 4.0), Some(1));
    }

    #[test]
    fn healthy_cluster_is_quiet() {
        let run = run_with_waits(&[
            vec![(0, 0), (9_000, 3), (9_000, 3)],
            vec![(6_000, 3), (0, 0), (12_000, 3)],
            vec![(9_000, 3), (9_000, 3), (0, 0)],
        ]);
        let stats = peer_waits(&run, 3);
        let calib = calibrate(&stats, Some(stats.mean_wait_ns()));
        assert_eq!(calib.peer_mult, vec![1.0; 3], "sub-floor waits calibrate to 1");
        assert_eq!(calib.comm_factor, 1.0);
        assert!(!calib.triggers_replan());
        assert_eq!(pick_straggler(&stats, 4.0), None);
    }

    #[test]
    fn global_drift_scales_comm_factor() {
        let run = run_with_waits(&[
            vec![(0, 0), (20_000_000, 2), (20_000_000, 2)],
            vec![(20_000_000, 2), (0, 0), (20_000_000, 2)],
        ]);
        let stats = peer_waits(&run, 3);
        // First chunk averaged 4ms per message; this one averages 10ms.
        let calib = calibrate(&stats, Some(4_000_000.0));
        assert!((calib.comm_factor - 2.5).abs() < 1e-9);
        assert!(calib.triggers_replan());
        // And the clamp holds against absurd drift.
        let wild = calibrate(&stats, Some(1.0));
        assert_eq!(wild.comm_factor, MAX_CALIBRATION);
    }

    #[test]
    fn decision_diff_attributes_migrations_to_owners() {
        // 2 workers, 1 layer. Worker 0 depends on {10, 11}, worker 1 on
        // {20}. Owners: 10, 20 -> peer 1; 11 -> peer 0.
        let deps = vec![vec![vec![10u32, 11]], vec![vec![20u32]]];
        let owner = |u: u32| if u == 11 { 0 } else { 1 };
        let old = DepDecision::CommAll;
        let mut sets = vec![vec![FxHashSet::default()], vec![FxHashSet::default()]];
        sets[0][0].insert(10u32);
        sets[1][0].insert(20u32);
        let new = DepDecision::Sets(sets);
        let delta = diff_decisions(&old, &new, 2, 1, &deps, owner);
        assert_eq!(delta.moved_to_cached, vec![0, 2]);
        assert_eq!(delta.moved_to_comm, vec![0, 0]);
        assert_eq!(delta.total_to_cached(), 2);
        // The reverse diff mirrors it.
        let back = diff_decisions(&new, &old, 2, 1, &deps, owner);
        assert_eq!(back.moved_to_comm, vec![0, 2]);
        assert_eq!(back.total_to_cached(), 0);
    }
}

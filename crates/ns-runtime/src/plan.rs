//! Dependency plans: the compiled form of a DepCache / DepComm / Hybrid
//! decision.
//!
//! All three engines differ only in *where each remote dependency's data
//! comes from*. A [`DepDecision`] answers, for every worker, layer, and
//! remote dependent neighbor: cache it (compute its representation locally
//! from a replicated subtree — Algorithm 2's treatment) or communicate it
//! (fetch from its master each epoch — Algorithm 3's treatment). The plan
//! builder compiles a decision into per-worker [`WorkerPlan`]s: per-layer
//! compute sets, local edge topologies in row coordinates, and
//! fully-resolved send/receive schedules. One engine-agnostic executor
//! then runs any plan.
//!
//! Layer indexing: `lz` is 0-based; layer `lz` consumes representations
//! `h^{(lz)}` (with `h^{(0)}` = input features) and produces `h^{(lz+1)}`.
//! The paper's layer `l` is `lz + 1`.

use rustc_hash::{FxHashMap, FxHashSet};

use ns_gnn::LayerTopology;
use ns_graph::{CsrGraph, Partitioning};

use crate::error::{Result, RuntimeError};

/// Which remote dependencies to cache.
#[derive(Debug, Clone)]
pub enum DepDecision {
    /// Cache every remote dependency at every layer — DepCache
    /// (Algorithm 2).
    CacheAll,
    /// Communicate every remote dependency — DepComm (Algorithm 3).
    CommAll,
    /// Per-worker, per-layer cached sets — Hybrid (Algorithm 4 output).
    /// `sets[worker][lz]` holds the cached remote dependencies among the
    /// inputs of layer `lz`.
    Sets(Vec<Vec<FxHashSet<u32>>>),
}

impl DepDecision {
    /// Whether remote dependency `u` of worker `w`'s layer `lz` inputs is
    /// cached.
    pub fn is_cached(&self, worker: usize, lz: usize, u: u32) -> bool {
        match self {
            DepDecision::CacheAll => true,
            DepDecision::CommAll => false,
            DepDecision::Sets(sets) => sets[worker][lz].contains(&u),
        }
    }

    /// Engine label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DepDecision::CacheAll => "DepCache",
            DepDecision::CommAll => "DepComm",
            DepDecision::Sets(_) => "Hybrid",
        }
    }
}

/// One layer of a worker's plan.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    /// Global ids whose layer output this worker computes, sorted. The
    /// top layer's compute set is exactly the owned partition; lower
    /// layers may additionally contain cached replicas.
    pub compute: Vec<u32>,
    /// Global ids of the layer-input rows, sorted (sources of `compute`'s
    /// in-edges plus `compute` itself).
    pub input_ids: Vec<u32>,
    /// Local edge structure in row coordinates.
    pub topo: LayerTopology,
    /// Rows copied from local previous-layer storage:
    /// `(row_in_prev_storage, row_in_input)`.
    pub local_src: Vec<(u32, u32)>,
    /// Per peer: global ids received from that peer this layer
    /// (sorted; `GetFromDepNbr` in DepComm mode).
    pub recv_ids: Vec<Vec<u32>>,
    /// Rows in the input matrix for each received id (parallel to
    /// `recv_ids`).
    pub recv_rows: Vec<Vec<u32>>,
    /// Per peer: global ids this worker must send to that peer this layer
    /// (all owned by this worker).
    pub send_ids: Vec<Vec<u32>>,
    /// Rows in this worker's previous-layer storage for each sent id.
    pub send_rows: Vec<Vec<u32>>,
}

impl LayerPlan {
    /// Total rows received this layer.
    pub fn recv_row_count(&self) -> usize {
        self.recv_ids.iter().map(Vec::len).sum()
    }

    /// Total rows sent this layer.
    pub fn send_row_count(&self) -> usize {
        self.send_ids.iter().map(Vec::len).sum()
    }
}

/// A complete per-worker execution plan.
#[derive(Debug, Clone)]
pub struct WorkerPlan {
    /// This worker's id.
    pub worker: usize,
    /// Owned partition (masters), sorted.
    pub owned: Vec<u32>,
    /// Global ids present in the local feature matrix (owned plus
    /// prefetched features of cached dependencies), sorted.
    pub feature_rows: Vec<u32>,
    /// Per-layer plans, `model.num_layers()` long.
    pub layers: Vec<LayerPlan>,
}

impl WorkerPlan {
    /// Replica compute slots: vertices computed at some layer that are not
    /// owned — the redundant computation DepCache pays for.
    pub fn replica_slots(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.compute.len() - self.owned.len())
            .sum()
    }

    /// Features prefetched beyond the owned partition.
    pub fn prefetched_features(&self) -> usize {
        self.feature_rows.len() - self.owned.len()
    }

    /// Rows communicated per epoch in the forward direction.
    pub fn forward_comm_rows(&self) -> usize {
        self.layers.iter().map(LayerPlan::recv_row_count).sum()
    }
}

/// Index of `id` in a sorted slice (panics if absent — plan invariant).
pub(crate) fn row_of(sorted: &[u32], id: u32) -> u32 {
    sorted
        .binary_search(&id)
        .unwrap_or_else(|_| panic!("id {id} missing from row index")) as u32
}

/// Builds per-worker plans for `num_layers` GNN layers under `decision`.
///
/// The construction walks layers top-down: the top layer computes exactly
/// the owned partition; classifying each layer's remote input
/// dependencies as cached adds them to the next-lower layer's compute set
/// (replicating their dependency chain layer by layer, down to prefetched
/// features), while communicated dependencies become per-peer receive
/// schedules. Send schedules are then derived by transposing the receive
/// schedules.
pub fn build_plans(
    graph: &CsrGraph,
    part: &Partitioning,
    num_layers: usize,
    decision: &DepDecision,
) -> Result<Vec<WorkerPlan>> {
    let m = part.num_parts();
    if num_layers == 0 {
        return Err(RuntimeError::InvalidConfig("zero GNN layers".into()));
    }
    if part.num_vertices() != graph.num_vertices() {
        return Err(RuntimeError::InvalidConfig(
            "partitioning does not match graph".into(),
        ));
    }

    struct Draft {
        owned: Vec<u32>,
        owned_set: FxHashSet<u32>,
        compute: Vec<Vec<u32>>,        // per layer, sorted
        input_ids: Vec<Vec<u32>>,      // per layer, sorted
        recv_ids: Vec<Vec<Vec<u32>>>,  // per layer, per peer
        feature_rows: Vec<u32>,        // sorted
    }

    let mut drafts: Vec<Draft> = (0..m)
        .map(|i| {
            let owned = part.part_vertices(i);
            let owned_set: FxHashSet<u32> = owned.iter().copied().collect();
            Draft {
                owned,
                owned_set,
                compute: vec![Vec::new(); num_layers],
                input_ids: vec![Vec::new(); num_layers],
                recv_ids: vec![vec![Vec::new(); m]; num_layers],
                feature_rows: Vec::new(),
            }
        })
        .collect();

    for (i, d) in drafts.iter_mut().enumerate() {
        d.compute[num_layers - 1] = d.owned.clone();
        // Features needed locally (owned + cached feature deps).
        let mut feature_local: FxHashSet<u32> = d.owned_set.clone();
        for lz in (0..num_layers).rev() {
            // Additions to the lower layer's compute set from caching.
            let mut lower: FxHashSet<u32> =
                if lz > 0 { d.compute[lz - 1].iter().copied().collect() } else { FxHashSet::default() };
            if lz > 0 {
                lower.extend(d.owned.iter().copied());
            }
            let mut inputs: FxHashSet<u32> = d.compute[lz].iter().copied().collect();
            for &v in &d.compute[lz] {
                for &u in graph.in_neighbors(v) {
                    inputs.insert(u);
                }
            }
            let mut input_ids: Vec<u32> = inputs.into_iter().collect();
            input_ids.sort_unstable();
            for &u in &input_ids {
                if d.owned_set.contains(&u) {
                    continue; // masters are always locally available
                }
                if decision.is_cached(i, lz, u) {
                    if lz == 0 {
                        feature_local.insert(u);
                    } else {
                        lower.insert(u);
                    }
                } else {
                    d.recv_ids[lz][part.owner(u)].push(u);
                }
            }
            if lz > 0 {
                let mut lower: Vec<u32> = lower.into_iter().collect();
                lower.sort_unstable();
                d.compute[lz - 1] = lower;
            }
            for peer in &mut d.recv_ids[lz] {
                peer.sort_unstable();
            }
            d.input_ids[lz] = input_ids;
        }
        let mut feats: Vec<u32> = feature_local.into_iter().collect();
        feats.sort_unstable();
        d.feature_rows = feats;
    }

    // Transpose receive schedules into send schedules.
    // send_ids[sender][lz][receiver] = recv_ids of receiver from sender.
    let mut send_ids: Vec<Vec<Vec<Vec<u32>>>> =
        (0..m).map(|_| vec![vec![Vec::new(); m]; num_layers]).collect();
    for (recv_worker, d) in drafts.iter().enumerate() {
        for lz in 0..num_layers {
            for (sender, ids) in d.recv_ids[lz].iter().enumerate() {
                if !ids.is_empty() {
                    send_ids[sender][lz][recv_worker] = ids.clone();
                }
            }
        }
    }

    // Assemble final plans with all row indices resolved.
    let mut plans = Vec::with_capacity(m);
    for (i, d) in drafts.iter().enumerate() {
        let mut layers = Vec::with_capacity(num_layers);
        for lz in 0..num_layers {
            let input_ids = &d.input_ids[lz];
            let prev_ids: &[u32] = if lz == 0 { &d.feature_rows } else { &d.compute[lz - 1] };
            let recv_set: FxHashSet<u32> =
                d.recv_ids[lz].iter().flatten().copied().collect();

            // Topology in row coordinates.
            let pos: FxHashMap<u32, u32> = input_ids
                .iter()
                .enumerate()
                .map(|(r, &id)| (id, r as u32))
                .collect();
            let mut adjacency: Vec<Vec<(u32, f32)>> = Vec::with_capacity(d.compute[lz].len());
            let mut dst_in_rows = Vec::with_capacity(d.compute[lz].len());
            for &v in &d.compute[lz] {
                let list: Vec<(u32, f32)> = graph
                    .in_neighbors(v)
                    .iter()
                    .zip(graph.in_weights(v).iter())
                    .map(|(&u, &w)| (pos[&u], w))
                    .collect();
                adjacency.push(list);
                dst_in_rows.push(pos[&v]);
            }
            let topo = LayerTopology::from_adjacency(input_ids.len(), &adjacency, dst_in_rows);

            let local_src: Vec<(u32, u32)> = input_ids
                .iter()
                .enumerate()
                .filter(|(_, id)| !recv_set.contains(id))
                .map(|(r, &id)| (row_of(prev_ids, id), r as u32))
                .collect();

            let recv_rows: Vec<Vec<u32>> = d.recv_ids[lz]
                .iter()
                .map(|ids| ids.iter().map(|&id| pos[&id]).collect())
                .collect();
            let send: Vec<Vec<u32>> = send_ids[i][lz].clone();
            let send_rows: Vec<Vec<u32>> = send
                .iter()
                .map(|ids| ids.iter().map(|&id| row_of(prev_ids, id)).collect())
                .collect();

            layers.push(LayerPlan {
                compute: d.compute[lz].clone(),
                input_ids: input_ids.clone(),
                topo,
                local_src,
                recv_ids: d.recv_ids[lz].clone(),
                recv_rows,
                send_ids: send,
                send_rows,
            });
        }
        plans.push(WorkerPlan {
            worker: i,
            owned: d.owned.clone(),
            feature_rows: d.feature_rows.clone(),
            layers,
        });
    }

    validate_plans(graph, part, &plans)?;
    Ok(plans)
}

/// Checks the structural invariants every plan must satisfy. Called by
/// [`build_plans`]; exposed for property tests.
pub fn validate_plans(
    graph: &CsrGraph,
    part: &Partitioning,
    plans: &[WorkerPlan],
) -> Result<()> {
    let m = plans.len();
    let err = |msg: String| Err(RuntimeError::InvalidConfig(msg));
    for plan in plans {
        let num_layers = plan.layers.len();
        // Top layer computes exactly the owned partition.
        if plan.layers[num_layers - 1].compute != plan.owned {
            return err(format!("worker {}: top compute != owned", plan.worker));
        }
        for (lz, lp) in plan.layers.iter().enumerate() {
            lp.topo
                .validate()
                .map_err(|e| RuntimeError::InvalidConfig(format!("topology: {e}")))?;
            // Owned vertices are computed at every layer.
            for &v in &plan.owned {
                if lp.compute.binary_search(&v).is_err() {
                    return err(format!(
                        "worker {}: owned {v} missing from layer {lz} compute",
                        plan.worker
                    ));
                }
            }
            // Every input row is covered exactly once (local xor received).
            let mut covered = vec![0u8; lp.input_ids.len()];
            for &(_, r) in &lp.local_src {
                covered[r as usize] += 1;
            }
            for rows in &lp.recv_rows {
                for &r in rows {
                    covered[r as usize] += 1;
                }
            }
            if covered.iter().any(|&c| c != 1) {
                return err(format!(
                    "worker {}, layer {lz}: input rows not covered exactly once",
                    plan.worker
                ));
            }
            // Received ids are owned by the peer they come from.
            for (j, ids) in lp.recv_ids.iter().enumerate() {
                for &id in ids {
                    if part.owner(id) != j {
                        return err(format!("recv id {id} not owned by peer {j}"));
                    }
                }
            }
            // Edge coverage: each computed vertex sees all its in-edges.
            let offsets = &lp.topo.dst_offsets;
            for (d, &v) in lp.compute.iter().enumerate() {
                let deg = offsets[d + 1] - offsets[d];
                if deg != graph.in_degree(v) {
                    return err(format!(
                        "worker {}, layer {lz}: vertex {v} has {deg} of {} in-edges",
                        plan.worker,
                        graph.in_degree(v)
                    ));
                }
            }
        }
    }
    // Send/recv symmetry across workers.
    for i in 0..m {
        for lz in 0..plans[i].layers.len() {
            for j in 0..m {
                if plans[i].layers[lz].send_ids[j] != plans[j].layers[lz].recv_ids[i] {
                    return err(format!(
                        "send/recv mismatch between {i} and {j} at layer {lz}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generate::rmat;
    use ns_graph::Partitioner;

    fn setup(n: usize, m_edges: usize, parts: usize) -> (CsrGraph, Partitioning) {
        let edges = rmat(n, m_edges, (0.5, 0.2, 0.2), 17);
        let g = CsrGraph::from_edges(n, &edges, true);
        let p = Partitioner::Chunk.partition(&g, parts);
        (g, p)
    }

    #[test]
    fn depcomm_plan_has_no_replicas() {
        let (g, p) = setup(500, 3000, 4);
        let plans = build_plans(&g, &p, 2, &DepDecision::CommAll).unwrap();
        for plan in &plans {
            assert_eq!(plan.replica_slots(), 0);
            assert_eq!(plan.prefetched_features(), 0);
            // Must communicate something on a cut graph.
        }
        let total_recv: usize = plans.iter().map(|p| p.forward_comm_rows()).sum();
        assert!(total_recv > 0);
    }

    #[test]
    fn depcache_plan_has_no_communication() {
        let (g, p) = setup(500, 3000, 4);
        let plans = build_plans(&g, &p, 2, &DepDecision::CacheAll).unwrap();
        for plan in &plans {
            assert_eq!(plan.forward_comm_rows(), 0);
            // Layer-0 compute set is the 1-hop closure of the partition,
            // so replicas must exist on a cut graph.
        }
        let replicas: usize = plans.iter().map(|p| p.replica_slots()).sum();
        assert!(replicas > 0);
    }

    #[test]
    fn depcache_matches_khop_closure() {
        let (g, p) = setup(300, 1500, 3);
        let plans = build_plans(&g, &p, 2, &DepDecision::CacheAll).unwrap();
        for plan in &plans {
            let closure = ns_graph::khop::khop_in_closure(&g, &plan.owned, 2);
            // Layer 0 computes h^1 for owned ∪ 1-hop in-neighbors = layers[1] ∪ seeds.
            let mut expect: Vec<u32> = closure.layers[1]
                .iter()
                .chain(closure.layers[0].iter())
                .copied()
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(plan.layers[0].compute, expect);
            // Feature rows cover the full 2-hop closure.
            assert_eq!(plan.feature_rows, closure.all_vertices());
        }
    }

    #[test]
    fn hybrid_sets_split_between_cache_and_comm() {
        let (g, p) = setup(400, 2400, 4);
        // Cache even-id deps, communicate odd ones.
        let mut sets: Vec<Vec<FxHashSet<u32>>> = vec![vec![FxHashSet::default(); 2]; 4];
        for i in 0..4 {
            for lz in 0..2 {
                for v in (0..400u32).filter(|v| v % 2 == 0) {
                    sets[i][lz].insert(v);
                }
            }
        }
        let plans = build_plans(&g, &p, 2, &DepDecision::Sets(sets)).unwrap();
        let replicas: usize = plans.iter().map(|p| p.replica_slots()).sum();
        let comm: usize = plans.iter().map(|p| p.forward_comm_rows()).sum();
        assert!(replicas > 0, "even deps should be cached");
        assert!(comm > 0, "odd deps should be communicated");
        // Every received id is odd (even ones were cached).
        for plan in &plans {
            for lp in &plan.layers {
                for ids in &lp.recv_ids {
                    assert!(ids.iter().all(|id| id % 2 == 1));
                }
            }
        }
    }

    #[test]
    fn single_worker_plan_is_fully_local() {
        let (g, p) = setup(200, 1000, 1);
        for d in [DepDecision::CacheAll, DepDecision::CommAll] {
            let plans = build_plans(&g, &p, 2, &d).unwrap();
            assert_eq!(plans.len(), 1);
            assert_eq!(plans[0].forward_comm_rows(), 0);
            assert_eq!(plans[0].replica_slots(), 0);
        }
    }

    #[test]
    fn three_layer_depcache_grows_closure() {
        let (g, p) = setup(400, 2400, 4);
        let plans2 = build_plans(&g, &p, 2, &DepDecision::CacheAll).unwrap();
        let plans3 = build_plans(&g, &p, 3, &DepDecision::CacheAll).unwrap();
        let r2: usize = plans2.iter().map(|p| p.replica_slots()).sum();
        let r3: usize = plans3.iter().map(|p| p.replica_slots()).sum();
        assert!(r3 > r2, "deeper model must replicate more ({r3} vs {r2})");
    }

    #[test]
    fn zero_layers_rejected() {
        let (g, p) = setup(100, 500, 2);
        assert!(build_plans(&g, &p, 0, &DepDecision::CommAll).is_err());
    }

    #[test]
    fn row_of_panics_on_missing() {
        let r = std::panic::catch_unwind(|| row_of(&[1, 3, 5], 4));
        assert!(r.is_err());
    }
}

//! Checkpoint-based epoch recovery for the fault-tolerant trainer.
//!
//! The trainer runs the epoch loop in *chunks* of `checkpoint_every`
//! epochs. After every successful chunk it captures a [`Checkpoint`]:
//! the parameter store serialized through the real on-disk checkpoint
//! format (`ns_tensor::checkpoint`, magic `NTSCKPT1`) plus the exported
//! Adam state. When a chunk fails with
//! [`RuntimeError::WorkerFailed`](crate::error::RuntimeError), the
//! trainer restores the last checkpoint, drops the dead worker,
//! repartitions the plan over the survivors, and resumes from the
//! checkpointed epoch — replaying at most `checkpoint_every - 1` epochs
//! of lost work. Serializing through the real format (rather than just
//! cloning the store) keeps the recovery path honest: whatever a
//! process-level restart would read back from disk is exactly what the
//! in-memory rollback uses.

use ns_tensor::checkpoint::{self, CheckpointError};
use ns_tensor::{AdamState, ParamStore};

/// Recovery policy for [`Trainer::train`](crate::trainer::Trainer::train).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Checkpoint cadence in epochs. `0` disables recovery entirely:
    /// a worker failure then surfaces as an error from `train`.
    pub checkpoint_every: usize,
    /// Maximum number of rollback-and-resume attempts before the
    /// failure is surfaced anyway.
    pub max_restarts: usize,
    /// Elastic rejoin: re-admit failed/evicted members at the next
    /// checkpoint boundary via the `ns-net` membership handshake, restore
    /// their state from the checkpoint, and rebuild the plan over the
    /// full world (upgrading a degraded engine back toward the configured
    /// one). Off by default: failures then shrink the cluster permanently,
    /// the pre-elastic behavior.
    pub rejoin: bool,
    /// Straggler eviction: at each checkpoint boundary, evict the peer
    /// whose per-message receive wait exceeds `straggler_factor` times
    /// the cluster median (it re-admits at the next boundary when
    /// `rejoin` is on). Off by default.
    pub evict_stragglers: bool,
    /// Eviction threshold multiplier over the median per-message wait.
    pub straggler_factor: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 0,
            max_restarts: 2,
            rejoin: false,
            evict_stragglers: false,
            straggler_factor: 4.0,
        }
    }
}

impl RecoveryConfig {
    /// Recovery with a checkpoint every `n` epochs (and default restart
    /// budget). `every(0)` keeps recovery disabled.
    pub fn every(n: usize) -> Self {
        Self { checkpoint_every: n, ..Self::default() }
    }

    /// Enables elastic rejoin (builder style).
    pub fn with_rejoin(mut self) -> Self {
        self.rejoin = true;
        self
    }

    /// Enables straggler eviction at `factor` times the median
    /// per-message receive wait (builder style).
    pub fn with_straggler_eviction(mut self, factor: f64) -> Self {
        self.evict_stragglers = true;
        self.straggler_factor = factor;
        self
    }

    /// Whether checkpointing (and therefore rollback) is active.
    pub fn enabled(&self) -> bool {
        self.checkpoint_every > 0
    }
}

/// A recovery point: the next epoch to run plus everything needed to
/// restart training from it deterministically.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// First epoch that still needs to run when resuming from here.
    pub next_epoch: usize,
    /// Parameter store in the `NTSCKPT1` wire format; empty means
    /// "initial parameters" (train from the model's fresh store).
    bytes: Vec<u8>,
    /// CRC32 of `bytes`, fixed at capture time. [`Checkpoint::restore`]
    /// re-verifies it, so any later bit-rot of the snapshot surfaces as a
    /// typed [`CheckpointError::CrcMismatch`] instead of being parsed.
    crc: u32,
    /// Optimizer state at the boundary (`None` for SGD or epoch 0).
    opt: Option<AdamState>,
}

impl Checkpoint {
    /// The implicit checkpoint before epoch 0: fresh parameters, fresh
    /// optimizer.
    pub fn initial() -> Self {
        Self { next_epoch: 0, bytes: Vec::new(), crc: 0, opt: None }
    }

    /// Captures a checkpoint after the epoch `next_epoch - 1` completed.
    pub fn capture(next_epoch: usize, store: &ParamStore, opt: Option<AdamState>) -> Self {
        let mut bytes = Vec::new();
        checkpoint::save(store, &mut bytes).expect("Vec<u8> writes are infallible");
        let crc = checkpoint::crc32(&bytes);
        Self { next_epoch, bytes, crc, opt }
    }

    /// Deserializes the recovery point. `Ok((None, None))` means resume
    /// from initial state. Verifies the capture-time CRC before parsing,
    /// so corruption is reported with the expected/computed checksum pair.
    #[allow(clippy::type_complexity)]
    pub fn restore(
        &self,
    ) -> Result<(Option<ParamStore>, Option<AdamState>), CheckpointError> {
        if self.bytes.is_empty() {
            return Ok((None, None));
        }
        let computed = checkpoint::crc32(&self.bytes);
        if computed != self.crc {
            return Err(CheckpointError::CrcMismatch {
                offset: 0,
                expected: self.crc,
                computed,
            });
        }
        let store = checkpoint::load_typed(&mut self.bytes.as_slice())?;
        Ok((Some(store), self.opt.clone()))
    }

    /// Serialized size of the parameter snapshot, bytes.
    pub fn param_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw `NTSCKPT1` payload (empty for the initial checkpoint).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The optimizer state captured at the boundary, if any. The durable
    /// store serializes it alongside the parameter snapshot.
    pub fn opt_state(&self) -> Option<&AdamState> {
        self.opt.as_ref()
    }

    /// Rebuilds a checkpoint from raw serialized state — what a
    /// process-level restart does after reading the snapshot back from
    /// disk. The CRC is recomputed from the given bytes (the durable
    /// store verifies its own checksums before handing bytes over), so
    /// [`Checkpoint::restore`] performs structural validation only and
    /// surfaces damage as a typed [`CheckpointError`] instead of
    /// panicking.
    pub fn from_raw(next_epoch: usize, bytes: Vec<u8>, opt: Option<AdamState>) -> Self {
        let crc = checkpoint::crc32(&bytes);
        Self { next_epoch, bytes, crc, opt }
    }

    /// Rebuilds a checkpoint from raw bytes and an *externally recorded*
    /// checksum (e.g. one read back from a durable header). Unlike
    /// [`Checkpoint::from_raw`], the CRC is not recomputed, so
    /// [`Checkpoint::restore`] rejects the bytes if they no longer match
    /// the recorded value — the path a torn in-place overwrite takes.
    pub fn from_raw_with_crc(
        next_epoch: usize,
        bytes: Vec<u8>,
        crc: u32,
        opt: Option<AdamState>,
    ) -> Self {
        Self { next_epoch, bytes, crc, opt }
    }

    /// The CRC32 recorded over the snapshot bytes at capture/rebuild
    /// time.
    pub fn crc(&self) -> u32 {
        self.crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_tensor::Tensor;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("w", Tensor::from_vec(2, 2, vec![1.0, -2.5, 3.25, 0.125]));
        s.register("b", Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        s
    }

    #[test]
    fn initial_checkpoint_restores_to_nothing() {
        let ckpt = Checkpoint::initial();
        assert_eq!(ckpt.next_epoch, 0);
        assert_eq!(ckpt.param_bytes(), 0);
        let (store, opt) = ckpt.restore().unwrap();
        assert!(store.is_none());
        assert!(opt.is_none());
    }

    #[test]
    fn capture_restore_roundtrips_params_and_opt_state() {
        let store = sample_store();
        let opt = AdamState {
            t: 7,
            m: vec![Tensor::zeros(2, 2), Tensor::zeros(1, 2)],
            v: vec![Tensor::from_vec(2, 2, vec![0.1; 4]), Tensor::zeros(1, 2)],
        };
        let ckpt = Checkpoint::capture(5, &store, Some(opt.clone()));
        assert_eq!(ckpt.next_epoch, 5);
        assert!(ckpt.param_bytes() > 0);
        let (restored, ropt) = ckpt.restore().unwrap();
        let restored = restored.unwrap();
        assert_eq!(restored.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(restored.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1.data(), v2.data());
        }
        assert_eq!(ropt, Some(opt));
    }

    #[test]
    fn corrupted_bytes_surface_io_error_not_panic() {
        // A flipped byte after capture fails the capture-time CRC with the
        // expected/computed checksum pair exposed in the typed error.
        let store = sample_store();
        let mut ckpt = Checkpoint::capture(3, &store, None);
        ckpt.bytes[0] = b'X'; // break the magic
        match ckpt.restore().map(|_| ()) {
            Err(CheckpointError::CrcMismatch { offset, expected, computed }) => {
                assert_eq!(offset, 0);
                assert_ne!(expected, computed);
                assert_eq!(expected, ckpt.crc);
            }
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
        // Truncation also changes the payload CRC.
        let mut truncated = Checkpoint::capture(3, &store, None);
        truncated.bytes.truncate(truncated.bytes.len() / 2);
        assert!(matches!(
            truncated.restore(),
            Err(CheckpointError::CrcMismatch { .. })
        ));
        // Damage applied *before* from_raw (the store path) skips the
        // capture-time CRC — from_raw recomputes it — but still surfaces a
        // typed structural error carrying the offending offset.
        let clean = Checkpoint::capture(3, &store, None);
        let mut raw = clean.raw_bytes().to_vec();
        raw[0] = b'X';
        let rebuilt = Checkpoint::from_raw(3, raw, None);
        match rebuilt.restore().map(|_| ()) {
            Err(CheckpointError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt at offset 0, got {other:?}"),
        }
    }

    #[test]
    fn config_enabled_logic() {
        assert!(!RecoveryConfig::default().enabled());
        assert!(!RecoveryConfig::every(0).enabled());
        assert!(RecoveryConfig::every(3).enabled());
        assert_eq!(RecoveryConfig::every(3).max_restarts, 2);
    }

    #[test]
    fn elastic_knobs_default_off() {
        let base = RecoveryConfig::every(2);
        assert!(!base.rejoin && !base.evict_stragglers);
        let elastic = base.with_rejoin().with_straggler_eviction(3.0);
        assert!(elastic.rejoin && elastic.evict_stragglers);
        assert_eq!(elastic.straggler_factor, 3.0);
        assert_eq!(elastic.checkpoint_every, 2);
    }

    #[test]
    fn from_raw_round_trips_capture() {
        let store = sample_store();
        let ckpt = Checkpoint::capture(4, &store, None);
        let rebuilt =
            Checkpoint::from_raw(ckpt.next_epoch, ckpt.raw_bytes().to_vec(), None);
        assert_eq!(rebuilt.param_bytes(), ckpt.param_bytes());
        assert!(rebuilt.restore().is_ok());
    }
}

//! Model checkpointing: a small, self-describing binary format for
//! [`ParamStore`] snapshots.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"NTSCKPT1"
//! count   u32      number of parameters
//! per parameter:
//!   name_len u32, name [u8; name_len] (UTF-8)
//!   rows u32, cols u32
//!   data [f32; rows*cols] (LE)
//! ```
//!
//! Round trips are exact (bit-identical f32), so a restored replica
//! continues training deterministically.

use std::io::{self, Read, Write};

use crate::nn::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"NTSCKPT1";

/// Serializes `store` into `w`.
pub fn save(store: &ParamStore, w: &mut dyn Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Deserializes a [`ParamStore`] from `r`.
pub fn load(r: &mut dyn Read) -> io::Result<ParamStore> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a NeutronStar checkpoint"));
    }
    let count = read_u32(r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(bad("parameter name too long"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("invalid UTF-8 name"))?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| bad("tensor shape overflow"))?;
        let mut bytes = vec![0u8; elems * 4];
        r.read_exact(&mut bytes)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        store.register(name, Tensor::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Restores checkpointed values into an *existing* store (e.g. one freshly
/// built by a model constructor) by matching parameter names. Errors if
/// any name or shape disagrees — a checkpoint for a different
/// architecture must not half-apply.
pub fn restore_into(store: &mut ParamStore, r: &mut dyn Read) -> io::Result<()> {
    let loaded = load(r)?;
    if loaded.len() != store.len() {
        return Err(bad("parameter count mismatch"));
    }
    // Validate everything before mutating anything.
    for (_, name, value) in loaded.iter() {
        let id = store
            .find(name)
            .ok_or_else(|| bad(&format!("unknown parameter {name:?}")))?;
        if store.value(id).shape() != value.shape() {
            return Err(bad(&format!("shape mismatch for {name:?}")));
        }
    }
    for (_, name, value) in loaded.iter() {
        let id = store.find(name).expect("validated above");
        *store.value_mut(id) = value.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::nn::Init;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ParamStore::new();
        s.register("layer0.weight", Init::XavierUniform.tensor(8, 4, &mut rng));
        s.register("layer0.bias", Init::Zeros.tensor(1, 4, &mut rng));
        s.register("eps", Tensor::scalar(0.25));
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1.shape(), v2.shape());
            assert_eq!(v1.data(), v2.data());
        }
    }

    #[test]
    fn restore_into_matches_by_name() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let mut fresh = sample_store();
        // Perturb, then restore.
        let id = fresh.find("eps").unwrap();
        *fresh.value_mut(id) = Tensor::scalar(99.0);
        restore_into(&mut fresh, &mut buf.as_slice()).unwrap();
        assert_eq!(fresh.value(id).scalar_value(), 0.25);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&mut b"NOTACKPT....".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.register("layer0.weight", Tensor::zeros(2, 2)); // wrong shape
        other.register("layer0.bias", Tensor::zeros(1, 4));
        other.register("eps", Tensor::scalar(0.0));
        let before = other.value(other.find("eps").unwrap()).scalar_value();
        assert!(restore_into(&mut other, &mut buf.as_slice()).is_err());
        // Nothing was half-applied.
        assert_eq!(
            other.value(other.find("eps").unwrap()).scalar_value(),
            before
        );
    }
}

//! Model checkpointing: a small, self-describing binary format for
//! [`ParamStore`] snapshots.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 8]  = b"NTSCKPT1"
//! count   u32      number of parameters
//! per parameter:
//!   name_len u32, name [u8; name_len] (UTF-8)
//!   rows u32, cols u32
//!   data [f32; rows*cols] (LE)
//! ```
//!
//! Round trips are exact (bit-identical f32), so a restored replica
//! continues training deterministically.
//!
//! Integrity: parse failures surface as a typed [`CheckpointError`]
//! carrying the byte offset where the stream went wrong (and, for
//! checksummed callers like the durable store in `ns-runtime`, the
//! expected-vs-computed CRC pair). The original `io::Result` entry points
//! are kept as thin wrappers via `From<CheckpointError> for io::Error`.
//! The [`crc32`] helper is the same IEEE CRC32 the `ns-net` wire layer
//! computes — the crates do not depend on each other, so each carries its
//! own table; a cross-crate agreement test in `ns-runtime` pins them
//! together.

use std::io::{self, Read, Write};

use crate::nn::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"NTSCKPT1";

const CRC_POLY: u32 = 0xEDB8_8320;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE 802.3) of `bytes`, used to checksum checkpoint payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Why a checkpoint stream failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying reader failed (`UnexpectedEof` for truncation) at
    /// the given byte offset.
    Io {
        /// Stream offset at which the read failed.
        offset: u64,
        /// The underlying I/O error kind.
        kind: io::ErrorKind,
    },
    /// The stream is structurally invalid (bad magic, absurd lengths,
    /// mismatched shapes) at the given byte offset.
    Corrupt {
        /// Stream offset of the offending field.
        offset: u64,
        /// What was wrong.
        what: String,
    },
    /// A checksummed payload failed CRC verification.
    CrcMismatch {
        /// Offset of the start of the checked region.
        offset: u64,
        /// CRC the trailer/header claimed.
        expected: u32,
        /// CRC recomputed over the bytes actually present.
        computed: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { offset, kind } => {
                write!(f, "checkpoint read failed at byte {offset}: {kind}")
            }
            CheckpointError::Corrupt { offset, what } => {
                write!(f, "corrupt checkpoint at byte {offset}: {what}")
            }
            CheckpointError::CrcMismatch { offset, expected, computed } => write!(
                f,
                "checkpoint CRC mismatch at byte {offset}: \
                 stored {expected:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        let kind = match &e {
            CheckpointError::Io { kind, .. } => *kind,
            CheckpointError::Corrupt { .. } | CheckpointError::CrcMismatch { .. } => {
                io::ErrorKind::InvalidData
            }
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Reader wrapper tracking the stream offset, so errors can say *where*
/// the bytes went bad.
struct Counted<'a> {
    inner: &'a mut dyn Read,
    offset: u64,
}

impl Counted<'_> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), CheckpointError> {
        self.inner
            .read_exact(buf)
            .map_err(|e| CheckpointError::Io { offset: self.offset, kind: e.kind() })?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
}

/// Serializes `store` into `w`.
pub fn save(store: &ParamStore, w: &mut dyn Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        let name_bytes = name.as_bytes();
        w.write_all(&(name_bytes.len() as u32).to_le_bytes())?;
        w.write_all(name_bytes)?;
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a [`ParamStore`] from `r`, reporting failures as a typed
/// [`CheckpointError`] with the offending byte offset.
pub fn load_typed(r: &mut dyn Read) -> Result<ParamStore, CheckpointError> {
    let mut r = Counted { inner: r, offset: 0 };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt {
            offset: 0,
            what: "not a NeutronStar checkpoint (bad magic)".into(),
        });
    }
    let count = r.u32()? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len_at = r.offset;
        let name_len = r.u32()? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt {
                offset: name_len_at,
                what: format!("parameter name too long ({name_len} bytes)"),
            });
        }
        let name_at = r.offset;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| CheckpointError::Corrupt {
            offset: name_at,
            what: "invalid UTF-8 name".into(),
        })?;
        let shape_at = r.offset;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let elems = rows.checked_mul(cols).ok_or_else(|| CheckpointError::Corrupt {
            offset: shape_at,
            what: "tensor shape overflow".into(),
        })?;
        let mut bytes = vec![0u8; elems * 4];
        r.read_exact(&mut bytes)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        store.register(name, Tensor::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Deserializes a [`ParamStore`] from `r` (the `io::Result` wrapper around
/// [`load_typed`]).
pub fn load(r: &mut dyn Read) -> io::Result<ParamStore> {
    load_typed(r).map_err(io::Error::from)
}

/// Restores checkpointed values into an *existing* store (e.g. one freshly
/// built by a model constructor) by matching parameter names. Errors if
/// any name or shape disagrees — a checkpoint for a different
/// architecture must not half-apply.
pub fn restore_into_typed(
    store: &mut ParamStore,
    r: &mut dyn Read,
) -> Result<(), CheckpointError> {
    let loaded = load_typed(r)?;
    let mismatch = |what: String| CheckpointError::Corrupt { offset: 0, what };
    if loaded.len() != store.len() {
        return Err(mismatch("parameter count mismatch".into()));
    }
    // Validate everything before mutating anything.
    for (_, name, value) in loaded.iter() {
        let id = store
            .find(name)
            .ok_or_else(|| mismatch(format!("unknown parameter {name:?}")))?;
        if store.value(id).shape() != value.shape() {
            return Err(mismatch(format!("shape mismatch for {name:?}")));
        }
    }
    for (_, name, value) in loaded.iter() {
        let id = store.find(name).expect("validated above");
        *store.value_mut(id) = value.clone();
    }
    Ok(())
}

/// The `io::Result` wrapper around [`restore_into_typed`].
pub fn restore_into(store: &mut ParamStore, r: &mut dyn Read) -> io::Result<()> {
    restore_into_typed(store, r).map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::nn::Init;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ParamStore::new();
        s.register("layer0.weight", Init::XavierUniform.tensor(8, 4, &mut rng));
        s.register("layer0.bias", Init::Zeros.tensor(1, 4, &mut rng));
        s.register("eps", Tensor::scalar(0.25));
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(v1.shape(), v2.shape());
            assert_eq!(v1.data(), v2.data());
        }
    }

    #[test]
    fn restore_into_matches_by_name() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let mut fresh = sample_store();
        // Perturb, then restore.
        let id = fresh.find("eps").unwrap();
        *fresh.value_mut(id) = Tensor::scalar(99.0);
        restore_into(&mut fresh, &mut buf.as_slice()).unwrap();
        assert_eq!(fresh.value(id).scalar_value(), 0.25);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&mut b"NOTACKPT....".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The typed API pins the offending offset.
        let terr = load_typed(&mut b"NOTACKPT....".as_slice()).unwrap_err();
        assert!(
            matches!(terr, CheckpointError::Corrupt { offset: 0, .. }),
            "{terr:?}"
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        let err = load_typed(&mut buf.as_slice()).unwrap_err();
        match err {
            CheckpointError::Io { offset, kind } => {
                assert_eq!(kind, io::ErrorKind::UnexpectedEof);
                assert!(offset as usize <= buf.len(), "offset {offset} in stream");
            }
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_error_converts_to_io_error() {
        let e = CheckpointError::CrcMismatch { offset: 8, expected: 1, computed: 2 };
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("CRC mismatch"));
        let e = CheckpointError::Io { offset: 3, kind: io::ErrorKind::UnexpectedEof };
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.register("layer0.weight", Tensor::zeros(2, 2)); // wrong shape
        other.register("layer0.bias", Tensor::zeros(1, 4));
        other.register("eps", Tensor::scalar(0.0));
        let before = other.value(other.find("eps").unwrap()).scalar_value();
        assert!(restore_into(&mut other, &mut buf.as_slice()).is_err());
        // Nothing was half-applied.
        assert_eq!(
            other.value(other.find("eps").unwrap()).scalar_value(),
            before
        );
    }
}

//! Neural-network building blocks: parameter storage, initialization, and
//! the `Linear`/`Mlp` modules used by the GNN layers.
//!
//! A [`ParamStore`] owns the *values* of all trainable parameters of a
//! model. Stores are replicated on every worker (NeutronStar keeps model
//! parameters synchronized via all-reduce), so the store is cheaply
//! cloneable and gradients are carried in a parallel `Vec<Tensor>` keyed by
//! [`ParamId`].
//!
//! Because a fresh [`Tape`] is built per layer per epoch,
//! parameters are *bound* onto a tape as leaves through a [`Bindings`]
//! scratch object; after the backward pass, `Bindings::collect_grads`
//! drains the leaves' gradients back into the id-indexed gradient vector.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Stable identifier of a parameter within a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Weight-initialization schemes.
#[derive(Debug, Clone, Copy)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
    /// Constant fill.
    Constant(f32),
}

impl Init {
    /// Materializes a `rows x cols` tensor with this scheme.
    pub fn tensor(self, rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                let data = (0..rows * cols).map(|_| rng.random_range(-a..a)).collect();
                Tensor::from_vec(rows, cols, data)
            }
            Init::Zeros => Tensor::zeros(rows, cols),
            Init::Constant(v) => Tensor::full(rows, cols, v),
        }
    }
}

/// Named trainable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; names must be unique.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate parameter name {name:?}"
        );
        self.names.push(name);
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Parameter value by id.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable parameter value by id.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Parameter name by id.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterate over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(self.values.iter())
            .enumerate()
            .map(|(i, (n, v))| (ParamId(i), n.as_str(), v))
    }

    /// A zeroed gradient vector parallel to this store.
    pub fn zero_grads(&self) -> Vec<Tensor> {
        self.values
            .iter()
            .map(|v| Tensor::zeros(v.rows(), v.cols()))
            .collect()
    }

    /// Total number of scalar parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Total parameter payload in bytes (used to meter all-reduce traffic).
    pub fn payload_bytes(&self) -> u64 {
        self.values.iter().map(Tensor::payload_bytes).sum()
    }
}

/// Per-tape record of which tape leaf realizes which parameter.
#[derive(Default)]
pub struct Bindings {
    bound: Vec<(ParamId, Var)>,
}

impl Bindings {
    /// Empty bindings for a fresh tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds parameter `id` onto `tape` as a leaf, memoizing so repeated
    /// binds of the same parameter share one leaf (and thus accumulate
    /// gradients correctly).
    pub fn bind(&mut self, tape: &mut Tape, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&(_, v)) = self.bound.iter().find(|(p, _)| *p == id) {
            return v;
        }
        let var = tape.leaf(store.value(id).clone());
        self.bound.push((id, var));
        var
    }

    /// Drains accumulated leaf gradients into `grads` (id-indexed, parallel
    /// to the store). Leaves unreached by backward contribute nothing.
    pub fn collect_grads(&self, tape: &mut Tape, grads: &mut [Tensor]) {
        for &(id, var) in &self.bound {
            if let Some(g) = tape.take_grad(var) {
                grads[id.0].add_assign(&g);
            }
        }
    }
}

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers a new linear layer's parameters under `prefix`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            format!("{prefix}.weight"),
            Init::XavierUniform.tensor(in_features, out_features, rng),
        );
        let b = store.register(
            format!("{prefix}.bias"),
            Init::Zeros.tensor(1, out_features, rng),
        );
        Self { w, b, in_features, out_features }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Parameter ids `(weight, bias)`.
    pub fn param_ids(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Records `x W + b` on the tape.
    pub fn forward(
        &self,
        tape: &mut Tape,
        bindings: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let w = bindings.bind(tape, store, self.w);
        let b = bindings.bind(tape, store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row_broadcast(xw, b)
    }

    /// FLOPs for a forward application on `n` rows.
    pub fn forward_flops(&self, n: usize) -> u64 {
        2 * n as u64 * self.in_features as u64 * self.out_features as u64
            + (n * self.out_features) as u64
    }
}

/// A multi-layer perceptron with ReLU between layers (used by GIN).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, hidden, out]`.
    pub fn new(store: &mut ParamStore, prefix: &str, widths: &[usize], rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "Mlp needs at least one layer");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{prefix}.{i}"), w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// The constituent linear layers, in order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.layers.first().unwrap().in_features()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.layers.last().unwrap().out_features()
    }

    /// Records the MLP forward pass (ReLU between layers, none after the
    /// last).
    pub fn forward(
        &self,
        tape: &mut Tape,
        bindings: &mut Bindings,
        store: &ParamStore,
        mut x: Var,
    ) -> Var {
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, bindings, store, x);
            if i + 1 < self.layers.len() {
                x = tape.relu(x);
            }
        }
        x
    }

    /// FLOPs for a forward application on `n` rows.
    pub fn forward_flops(&self, n: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_flops(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn param_store_registration_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(2, 3));
        let b = store.register("b", Tensor::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.find("a"), Some(a));
        assert_eq!(store.find("missing"), None);
        assert_eq!(store.name(b), "b");
        assert_eq!(store.scalar_count(), 9);
        assert_eq!(store.payload_bytes(), 36);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn param_store_rejects_duplicates() {
        let mut store = ParamStore::new();
        store.register("a", Tensor::zeros(1, 1));
        store.register("a", Tensor::zeros(1, 1));
    }

    #[test]
    fn xavier_init_is_bounded_and_seeded() {
        let mut r1 = rng();
        let mut r2 = rng();
        let t1 = Init::XavierUniform.tensor(10, 10, &mut r1);
        let t2 = Init::XavierUniform.tensor(10, 10, &mut r2);
        assert_eq!(t1.data(), t2.data(), "same seed, same init");
        let a = (6.0f32 / 20.0).sqrt();
        assert!(t1.data().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn linear_forward_shape_and_grads() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut r);
        let mut tape = Tape::new();
        let mut binds = Bindings::new();
        let x = tape.leaf(Tensor::full(5, 4, 1.0));
        let y = lin.forward(&mut tape, &mut binds, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let mut grads = store.zero_grads();
        binds.collect_grads(&mut tape, &mut grads);
        let (w, b) = lin.param_ids();
        // Bias gradient of sum-loss over 5 rows is 5 per output column.
        assert_eq!(grads[b.index()].data(), &[5.0, 5.0, 5.0]);
        assert!(grads[w.index()].norm() > 0.0);
    }

    #[test]
    fn bindings_memoize_repeated_binds() {
        let mut store = ParamStore::new();
        let id = store.register("p", Tensor::scalar(2.0));
        let mut tape = Tape::new();
        let mut binds = Bindings::new();
        let v1 = binds.bind(&mut tape, &store, id);
        let v2 = binds.bind(&mut tape, &store, id);
        assert_eq!(v1, v2);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 2], &mut r);
        assert_eq!(mlp.in_features(), 4);
        assert_eq!(mlp.out_features(), 2);
        let mut tape = Tape::new();
        let mut binds = Bindings::new();
        let x = tape.leaf(Tensor::full(3, 4, 0.5));
        let y = mlp.forward(&mut tape, &mut binds, &store, x);
        assert_eq!(tape.value(y).shape(), (3, 2));
        assert_eq!(
            mlp.forward_flops(3),
            (2 * 3 * 4 * 8 + 3 * 8) as u64 + (2 * 3 * 8 * 2 + 3 * 2) as u64
        );
    }
}

//! The dense 2-D tensor type and its eager (non-autograd) kernels.
//!
//! The heavy kernels (matmuls, gather/scatter, CSR aggregation) are
//! row-blocked through [`ns_par`]: the output buffer is split into
//! disjoint row ranges and each range runs the *same* per-row loop the
//! sequential path uses, so results are bit-identical at any thread
//! count (see `DESIGN.md` §11).

/// Minimum estimated element-work before a kernel fans out to the
/// thread pool; below this, dispatch overhead dominates.
const PAR_MIN_WORK: usize = 1 << 15;

/// Runs `kernel(row_lo, rows)` over disjoint row blocks of `out` (an
/// `n_rows x row_width` row-major buffer). Fans out to [`ns_par`] when
/// `n_rows * work_per_row` clears [`PAR_MIN_WORK`] and more than one
/// thread is configured; otherwise runs the kernel once over the whole
/// buffer. Either way every row is visited exactly once by exactly one
/// invocation, which is what keeps results bit-identical.
fn par_rows(
    out: &mut [f32],
    n_rows: usize,
    row_width: usize,
    work_per_row: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), n_rows * row_width);
    if out.is_empty() {
        return;
    }
    let threads = ns_par::threads();
    if threads <= 1 || n_rows.saturating_mul(work_per_row.max(1)) < PAR_MIN_WORK {
        kernel(0, out);
        return;
    }
    let rows_per_chunk = ns_par::chunk_len(n_rows, threads);
    ns_par::par_chunks(out, rows_per_chunk * row_width, |ci, chunk| {
        kernel(ci * rows_per_chunk, chunk);
    });
}

/// Rows of the matmul micro-kernel tile processed together (reuses each
/// loaded `b` strip across MR accumulator rows, cutting B-matrix traffic
/// by MR).
const MR: usize = 4;
/// Columns per accumulator tile: 8 f32 = one AVX2 register, the unroll
/// the autovectorizer turns into a single FMA per row per step.
const NR: usize = 8;

/// Packs the full NR-wide column tiles of `b` (`k x m` row-major) into
/// contiguous `k x NR` panels: panel `jt` holds columns
/// `jt*NR..jt*NR + NR` with the `k` index contiguous-by-strip, so the
/// micro-kernel's inner loop reads one sequential 8 KiB stream per tile
/// instead of striding `m` floats per step. Pure layout change — element
/// values and the kernel's accumulation order are untouched. Tail
/// columns (`m % NR`) stay in the original buffer.
fn pack_b_panels(bdata: &[f32], k: usize, m: usize) -> Vec<f32> {
    let tiles = m / NR;
    let mut bp = crate::pool::take_scratch(tiles * k * NR);
    for (jt, panel) in bp.chunks_exact_mut(k * NR).enumerate() {
        let j = jt * NR;
        for (kk, strip) in panel.chunks_exact_mut(NR).enumerate() {
            strip.copy_from_slice(&bdata[kk * m + j..kk * m + j + NR]);
        }
    }
    bp
}

/// Register-tiled inner kernel shared by `matmul` / `matmul_tn` /
/// `matmul_nt`: computes output rows `lo..lo + orows.len()/m` of
/// `out = a @ b` (`a` is `n x k` row-major; `b` is supplied as packed
/// panels `bp` from [`pack_b_panels`] plus the original `bdata` for the
/// column tail).
///
/// Tiling is MR x NR accumulator blocks held in stack arrays: the `k`
/// loop broadcasts one `a` scalar per row against a contiguous NR-wide
/// strip of `b`, so every output element still accumulates in ascending
/// `k` order — bit-identical to the naive `i-j-k` triple loop and
/// independent of tile placement, which is what keeps thread-count
/// parity exact.
fn matmul_rows(
    adata: &[f32],
    bp: &[f32],
    bdata: &[f32],
    k: usize,
    m: usize,
    lo: usize,
    orows: &mut [f32],
) {
    if m == 0 {
        return;
    }
    let rows = orows.len() / m;
    let tiles = m / NR;
    let jtail = tiles * NR;
    let mut r = 0usize;
    while r + MR <= rows {
        let i = lo + r;
        // Hoisting each row of `a` into its own length-`k` slice lets the
        // compiler prove `a?[kk]` in-bounds from the loop over the panel's
        // exactly-`k` strips; leaving the `(i + t) * k + kk` indexing inline
        // keeps a bounds check (and its branch) inside the FMA loop, which
        // measures ~1.8x slower at runtime-opaque shapes.
        let a0 = &adata[i * k..(i + 1) * k];
        let a1 = &adata[(i + 1) * k..(i + 2) * k];
        let a2 = &adata[(i + 2) * k..(i + 3) * k];
        let a3 = &adata[(i + 3) * k..(i + 4) * k];
        for (jt, panel) in bp.chunks_exact(k * NR).enumerate() {
            let j = jt * NR;
            let mut acc = [[0.0f32; NR]; MR];
            for (kk, strip) in panel.chunks_exact(NR).enumerate() {
                let b: &[f32; NR] = strip.try_into().unwrap();
                let xs = [a0[kk], a1[kk], a2[kk], a3[kk]];
                for t in 0..MR {
                    let x = xs[t];
                    for u in 0..NR {
                        acc[t][u] += x * b[u];
                    }
                }
            }
            for (t, at) in acc.iter().enumerate() {
                orows[(r + t) * m + j..(r + t) * m + j + NR].copy_from_slice(at);
            }
        }
        if jtail < m {
            let w = m - jtail;
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let b = &bdata[kk * m + jtail..kk * m + m];
                for t in 0..MR {
                    let x = adata[(i + t) * k + kk];
                    for u in 0..w {
                        acc[t][u] += x * b[u];
                    }
                }
            }
            for (t, at) in acc.iter().enumerate() {
                orows[(r + t) * m + jtail..(r + t + 1) * m].copy_from_slice(&at[..w]);
            }
        }
        r += MR;
    }
    while r < rows {
        let i = lo + r;
        let a0 = &adata[i * k..(i + 1) * k];
        for (jt, panel) in bp.chunks_exact(k * NR).enumerate() {
            let j = jt * NR;
            let mut acc = [0.0f32; NR];
            for (kk, strip) in panel.chunks_exact(NR).enumerate() {
                let b: &[f32; NR] = strip.try_into().unwrap();
                let x = a0[kk];
                for u in 0..NR {
                    acc[u] += x * b[u];
                }
            }
            orows[r * m + j..r * m + j + NR].copy_from_slice(&acc);
        }
        if jtail < m {
            let w = m - jtail;
            let mut acc = [0.0f32; NR];
            for kk in 0..k {
                let b = &bdata[kk * m + jtail..kk * m + m];
                let x = adata[i * k + kk];
                for u in 0..w {
                    acc[u] += x * b[u];
                }
            }
            orows[r * m + jtail..r * m + m].copy_from_slice(&acc[..w]);
        }
        r += 1;
    }
}

/// A dense, row-major, two-dimensional `f32` tensor.
///
/// Scalars are represented as `1 x 1` tensors; row vectors (e.g. biases) as
/// `1 x d`. All kernels are panics-on-misuse internally but the public
/// constructors validate shapes.
///
/// Backing buffers come from the process-wide [`crate::pool`]: `Drop`
/// recycles them and the constructors (including `Clone`) take them back,
/// so shape-stationary workloads reach a zero-allocation steady state
/// (DESIGN.md §14).
#[derive(PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut out = Tensor::scratch(self.rows, self.cols);
        out.data.copy_from_slice(&self.data);
        out
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        if !self.data.is_empty() {
            crate::pool::recycle(std::mem::take(&mut self.data));
        }
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 12 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from raw parts. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: crate::pool::take_zeroed(rows * cols) }
    }

    /// A `rows x cols` tensor with **unspecified contents**, for kernels
    /// that overwrite every element before the tensor escapes. The
    /// buffer is always initialized memory (pool reuse or fresh zeros),
    /// so this is safe — just meaningless until written.
    pub(crate) fn scratch(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: crate::pool::take_scratch(rows * cols) }
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut out = Self::scratch(rows, cols);
        out.data.fill(value);
        out
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        let mut out = Self::scratch(1, 1);
        out.data[0] = value;
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the backing storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing storage (the buffer leaves the pool's
    /// custody; recycle it via a later `Tensor::from_vec` drop if long
    /// steady-state reuse matters).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 x 1` tensor.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on non-scalar tensor");
        self.data[0]
    }

    /// Returns `self @ other` (matrix product).
    ///
    /// Register-tiled (see [`matmul_rows`]): each thread's row block runs
    /// the same MR x NR micro-kernel with a fixed ascending-`k` inner
    /// order per output element, so results are bit-identical at every
    /// thread count *and* exactly equal to the naive `i-j-k` triple loop
    /// (pinned by `tests/tiled_equivalence.rs`).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let bp = pack_b_panels(&other.data, k, m);
        let mut out = Tensor::scratch(n, m);
        par_rows(&mut out.data, n, m, k * m, |lo, orows| {
            matmul_rows(&self.data, &bp, &other.data, k, m, lo, orows);
        });
        crate::pool::recycle(bp);
        out
    }

    /// Returns `selfᵀ @ other`.
    ///
    /// Materializes the (cheap, `O(k·n)`) transpose of `self` into a
    /// pooled scratch buffer and runs the same tiled kernel as
    /// [`Self::matmul`] — the per-element accumulation order (`kk`
    /// ascending) is identical to `self.transpose().matmul(other)` by
    /// construction, and the transpose cost is negligible against the
    /// `O(n·k·m)` product it unlocks contiguous loads for.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: {}x{} , {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let at = self.transpose(); // n x k, pooled scratch
        let bp = pack_b_panels(&other.data, k, m);
        let mut out = Tensor::scratch(n, m);
        par_rows(&mut out.data, n, m, k * m, |lo, orows| {
            matmul_rows(&at.data, &bp, &other.data, k, m, lo, orows);
        });
        crate::pool::recycle(bp);
        out
    }

    /// Returns `self @ otherᵀ`.
    ///
    /// Materializes the transpose of `other` (`O(m·k)`, pooled) and runs
    /// the tiled [`Self::matmul`] kernel. Per output element this
    /// accumulates `self[i][kk] * other[j][kk]` in ascending `kk` — the
    /// same order as a scalar dot product of the two contiguous rows.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} , {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let bt = other.transpose(); // k x m, pooled scratch
        let bp = pack_b_panels(&bt.data, k, m);
        let mut out = Tensor::scratch(n, m);
        par_rows(&mut out.data, n, m, k * m, |lo, orows| {
            matmul_rows(&self.data, &bp, &bt.data, k, m, lo, orows);
        });
        crate::pool::recycle(bp);
        out
    }

    /// Materialized transpose (cache-blocked).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::scratch(self.cols, self.rows);
        const B: usize = 32; // 32x32 f32 block = 4 KiB, L1-resident both ways
        for rb in (0..self.rows).step_by(B) {
            let re = (rb + B).min(self.rows);
            for cb in (0..self.cols).step_by(B) {
                let ce = (cb + B).min(self.cols);
                for r in rb..re {
                    for c in cb..ce {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise sum; shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let mut out = Tensor::scratch(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
        out
    }

    /// Elementwise difference; shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let mut out = Tensor::scratch(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a - b;
        }
        out
    }

    /// Elementwise (Hadamard) product; shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul: shape mismatch");
        let mut out = Tensor::scratch(self.rows, self.cols);
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a * b;
        }
        out
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut out = Tensor::scratch(self.rows, self.cols);
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = a * s;
        }
        out
    }

    /// Adds a `1 x cols` row vector to every row (single pass, no
    /// intermediate copy of `self`).
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "add_row_broadcast: width mismatch");
        let mut out = Tensor::scratch(self.rows, self.cols);
        let cols = self.cols.max(1);
        for (orow, srow) in out.data.chunks_mut(cols).zip(self.data.chunks(cols)) {
            for ((o, &a), &b) in orow.iter_mut().zip(srow).zip(&row.data) {
                *o = a + b;
            }
        }
        out
    }

    /// Multiplies each row `r` by the scalar `coeff[r]` (an `n x 1`
    /// tensor), single pass.
    pub fn mul_col_broadcast(&self, coeff: &Tensor) -> Tensor {
        assert_eq!(coeff.cols, 1, "mul_col_broadcast: coeff must be n x 1");
        assert_eq!(coeff.rows, self.rows, "mul_col_broadcast: height mismatch");
        let mut out = Tensor::scratch(self.rows, self.cols);
        let cols = self.cols.max(1);
        for ((orow, srow), &c) in out
            .data
            .chunks_mut(cols)
            .zip(self.data.chunks(cols))
            .zip(&coeff.data)
        {
            for (o, &a) in orow.iter_mut().zip(srow) {
                *o = a * c;
            }
        }
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += s * other` (AXPY).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Gathers rows `idx` into a new `idx.len() x cols` tensor. Pure
    /// row-copy into pooled scratch — no zero-fill pre-pass.
    pub fn gather_rows(&self, idx: &[u32]) -> Tensor {
        let d = self.cols;
        let mut out = Tensor::scratch(idx.len(), d);
        par_rows(&mut out.data, idx.len(), d, d, |lo, orows| {
            for (ri, orow) in orows.chunks_mut(d.max(1)).enumerate() {
                orow.copy_from_slice(self.row(idx[lo + ri] as usize));
            }
        });
        out
    }

    /// Scatter-add: `out[idx[r]] += self[r]` for every row `r`; output has
    /// `n_out` rows. The accumulation visits rows in ascending `r`, making
    /// the result deterministic for a fixed `idx`.
    ///
    /// Parallel execution partitions by *destination* row: each chunk
    /// scans the full index list but accumulates only into the rows it
    /// owns, so every output row sees contributions in the same ascending
    /// `r` order as the sequential scan (bit-identical, no atomics).
    pub fn scatter_add_rows(&self, idx: &[u32], n_out: usize) -> Tensor {
        assert_eq!(idx.len(), self.rows, "scatter_add_rows: index count");
        let d = self.cols;
        let mut out = Tensor::zeros(n_out, d);
        let work_per_row = (idx.len() / n_out.max(1) + 1) * d.max(1);
        par_rows(&mut out.data, n_out, d, work_per_row, |lo, orows| {
            let hi = lo + orows.len() / d.max(1);
            for (r, &i) in idx.iter().enumerate() {
                let dst = i as usize;
                debug_assert!(dst < n_out);
                if dst < lo || dst >= hi {
                    continue;
                }
                let src = &self.data[r * d..(r + 1) * d];
                let drow = &mut orows[(dst - lo) * d..(dst - lo + 1) * d];
                for (o, &s) in drow.iter_mut().zip(src.iter()) {
                    *o += s;
                }
            }
        });
        out
    }

    /// Concatenates columns: `[self | other]`. One pass of row copies
    /// straight into the preallocated output.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Tensor::scratch(self.rows, cols);
        for r in 0..self.rows {
            let base = r * cols;
            out.data[base..base + self.cols].copy_from_slice(self.row(r));
            out.data[base + self.cols..base + cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits columns at `at`: returns (`[.., ..at]`, `[.., at..]`). One
    /// pass of row copies into two preallocated outputs.
    pub fn split_cols(&self, at: usize) -> (Tensor, Tensor) {
        assert!(at <= self.cols, "split_cols: at > cols");
        let rcols = self.cols - at;
        let mut left = Tensor::scratch(self.rows, at);
        let mut right = Tensor::scratch(self.rows, rcols);
        for r in 0..self.rows {
            let row = self.row(r);
            left.data[r * at..(r + 1) * at].copy_from_slice(&row[..at]);
            right.data[r * rcols..(r + 1) * rcols].copy_from_slice(&row[at..]);
        }
        (left, right)
    }

    /// ReLU.
    pub fn relu(&self) -> Tensor {
        let mut out = Tensor::scratch(self.rows, self.cols);
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = a.max(0.0);
        }
        out
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        let mut out = Tensor::scratch(self.rows, self.cols);
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = if a > 0.0 { a } else { alpha * a };
        }
        out
    }

    /// ELU with scale `alpha`.
    pub fn elu(&self, alpha: f32) -> Tensor {
        let mut out = Tensor::scratch(self.rows, self.cols);
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = if a > 0.0 { a } else { alpha * (a.exp() - 1.0) };
        }
        out
    }

    /// Row-wise log-softmax (numerically stabilized). Writes shifted
    /// values straight into the output — no upfront copy of `self`.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = Tensor::scratch(self.rows, self.cols);
        let cols = self.cols.max(1);
        for (orow, srow) in out.data.chunks_mut(cols).zip(self.data.chunks(cols)) {
            let max = srow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (o, &a) in orow.iter_mut().zip(srow) {
                *o = a - max;
                sum += o.exp();
            }
            let log_sum = sum.ln();
            for o in orow.iter_mut() {
                *o -= log_sum;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of columns: returns a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element per row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Fused sparse aggregation (SpMM-style): for each destination `d`,
    /// sums `weights[e] * self[edge_src[e]]` over `e` in
    /// `dst_offsets[d]..dst_offsets[d+1]`. `weights = None` means
    /// unweighted. Never materializes per-edge rows — this is the fused
    /// kernel real GNN backends use for copy-style edge functions.
    pub fn weighted_aggregate(
        &self,
        edge_src: &[u32],
        dst_offsets: &[usize],
        weights: Option<&[f32]>,
    ) -> Tensor {
        let n_dst = dst_offsets.len() - 1;
        let d = self.cols;
        let mut out = Tensor::scratch(n_dst, d);
        let n_edges = dst_offsets[n_dst];
        let work_per_row = (n_edges / n_dst.max(1) + 1) * d.max(1);
        // Column-tiled: per destination, each NR-wide column strip
        // accumulates its whole edge segment in registers and stores
        // once — per-edge traffic drops from a full output-row
        // read-modify-write to an NR-float source read. Per output
        // element the edge order is still ascending `e`, so results are
        // bit-identical to the edge-outer formulation.
        par_rows(&mut out.data, n_dst, d, work_per_row, |lo, orows| {
            for (ri, row) in orows.chunks_mut(d.max(1)).enumerate() {
                let dst = lo + ri;
                let (es, ee) = (dst_offsets[dst], dst_offsets[dst + 1]);
                let seg = &edge_src[es..ee];
                let mut j = 0usize;
                while j + NR <= d {
                    let mut acc = [0.0f32; NR];
                    match weights {
                        Some(w) => {
                            for (idx, &src) in seg.iter().enumerate() {
                                let we = w[es + idx];
                                let s: &[f32; NR] = self.data
                                    [src as usize * d + j..src as usize * d + j + NR]
                                    .try_into()
                                    .unwrap();
                                for u in 0..NR {
                                    acc[u] += we * s[u];
                                }
                            }
                        }
                        None => {
                            for &src in seg {
                                let s: &[f32; NR] = self.data
                                    [src as usize * d + j..src as usize * d + j + NR]
                                    .try_into()
                                    .unwrap();
                                for u in 0..NR {
                                    acc[u] += s[u];
                                }
                            }
                        }
                    }
                    row[j..j + NR].copy_from_slice(&acc);
                    j += NR;
                }
                if j < d {
                    let w_cols = d - j;
                    let mut acc = [0.0f32; NR];
                    match weights {
                        Some(w) => {
                            for (idx, &src) in seg.iter().enumerate() {
                                let we = w[es + idx];
                                let s = &self.data[src as usize * d + j..(src as usize + 1) * d];
                                for u in 0..w_cols {
                                    acc[u] += we * s[u];
                                }
                            }
                        }
                        None => {
                            for &src in seg {
                                let s = &self.data[src as usize * d + j..(src as usize + 1) * d];
                                for u in 0..w_cols {
                                    acc[u] += s[u];
                                }
                            }
                        }
                    }
                    row[j..].copy_from_slice(&acc[..w_cols]);
                }
            }
        });
        out
    }

    /// Adjoint of [`Self::weighted_aggregate`]: treats `self` as the
    /// gradient over destinations and scatters it back to the `n_src`
    /// source rows through the same edge structure.
    pub fn weighted_aggregate_transpose(
        &self,
        edge_src: &[u32],
        dst_offsets: &[usize],
        weights: Option<&[f32]>,
        n_src: usize,
    ) -> Tensor {
        let n_dst = dst_offsets.len() - 1;
        assert_eq!(n_dst, self.rows, "gradient rows must match destinations");
        let d = self.cols;
        let mut out = Tensor::zeros(n_src, d);
        let n_edges = dst_offsets[n_dst];
        let work_per_row = (n_edges / n_src.max(1) + 1) * d.max(1);
        // Partitioned by *source* (output) row: each chunk walks the edge
        // list in the same dst-then-edge order as the sequential scan and
        // accumulates only into the rows it owns — same per-row FP order,
        // no atomics.
        par_rows(&mut out.data, n_src, d, work_per_row, |lo, orows| {
            let hi = lo + orows.len() / d.max(1);
            for dst in 0..n_dst {
                let grow = &self.data[dst * d..(dst + 1) * d];
                for e in dst_offsets[dst]..dst_offsets[dst + 1] {
                    let src = edge_src[e] as usize;
                    debug_assert!(src < n_src);
                    if src < lo || src >= hi {
                        continue;
                    }
                    let orow = &mut orows[(src - lo) * d..(src - lo + 1) * d];
                    match weights {
                        Some(w) => {
                            let we = w[e];
                            for (o, &g) in orow.iter_mut().zip(grow) {
                                *o += we * g;
                            }
                        }
                        None => {
                            for (o, &g) in orow.iter_mut().zip(grow) {
                                *o += g;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// Max-aggregation over in-edges: for each destination `d` and column
    /// `c`, takes the maximum of `self[edge_src[e]][c]` over `d`'s edge
    /// segment. Returns the aggregated tensor and, per output element, the
    /// *edge index* that won (needed by the adjoint; `u32::MAX` marks
    /// empty segments, whose output is 0).
    pub fn max_aggregate(
        &self,
        edge_src: &[u32],
        dst_offsets: &[usize],
    ) -> (Tensor, Vec<u32>) {
        let n_dst = dst_offsets.len() - 1;
        let d = self.cols;
        let mut out = Tensor::zeros(n_dst, d);
        let mut argmax = vec![u32::MAX; n_dst * d];
        let run = |lo: usize, hi: usize, orows: &mut [f32], arows: &mut [u32]| {
            for dst in lo..hi {
                let (s, e) = (dst_offsets[dst], dst_offsets[dst + 1]);
                if s == e {
                    continue;
                }
                for c in 0..d {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_e = u32::MAX;
                    for (idx, &src) in edge_src[s..e].iter().enumerate() {
                        let v = self.data[src as usize * d + c];
                        if v > best {
                            best = v;
                            best_e = (s + idx) as u32;
                        }
                    }
                    orows[(dst - lo) * d + c] = best;
                    arows[(dst - lo) * d + c] = best_e;
                }
            }
        };
        let n_edges = dst_offsets[n_dst];
        let work = (n_edges / n_dst.max(1) + 1) * d.max(1);
        let threads = ns_par::threads();
        if threads <= 1 || n_dst.saturating_mul(work) < PAR_MIN_WORK || d == 0 {
            run(0, n_dst, &mut out.data, &mut argmax);
        } else {
            // Two parallel output buffers (values + winning edges) share
            // the same dst-row ownership, so a single range dispatch
            // hands each chunk disjoint windows of both.
            let optr = ns_par::SendPtr(out.data.as_mut_ptr());
            let aptr = ns_par::SendPtr(argmax.as_mut_ptr());
            let rows_per_chunk = ns_par::chunk_len(n_dst, threads);
            ns_par::par_ranges(n_dst, rows_per_chunk, |lo, hi| {
                // SAFETY: `par_ranges` hands out disjoint [lo, hi) row
                // ranges, so the two windows are exclusively owned here.
                let (orows, arows) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(optr.get().add(lo * d), (hi - lo) * d),
                        std::slice::from_raw_parts_mut(aptr.get().add(lo * d), (hi - lo) * d),
                    )
                };
                run(lo, hi, orows, arows);
            });
        }
        (out, argmax)
    }

    /// Softmax over contiguous row segments.
    ///
    /// `offsets` has `n_segments + 1` entries; rows `offsets[s]..offsets[s+1]`
    /// form a segment that is normalized jointly (across all its rows and
    /// columns). Used for GAT attention normalized per destination vertex,
    /// where rows are edge logits grouped by destination.
    pub fn segment_softmax(&self, offsets: &[usize]) -> Tensor {
        assert_eq!(self.cols, 1, "segment_softmax expects an e x 1 tensor");
        assert_eq!(*offsets.last().unwrap_or(&0), self.rows);
        let mut out = self.clone();
        for w in offsets.windows(2) {
            let (s, e) = (w[0], w[1]);
            if s == e {
                continue;
            }
            let seg = &mut out.data[s..e];
            let max = seg.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in seg.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in seg.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Bytes occupied by the payload (excluding the struct header). Used by
    /// the network/memory models.
    pub fn payload_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        let via_t = a.transpose().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_eq!(via_t.data(), direct.data());
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert_eq!(via_t.data(), direct.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 3., 9.]);
        assert_eq!(a.sub(&b).data(), &[-3., -7., -3.]);
        assert_eq!(a.mul(&b).data(), &[4., -10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., -4., 6.]);
    }

    #[test]
    fn broadcast_ops() {
        let x = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let bias = Tensor::from_vec(1, 2, vec![10., 20.]);
        assert_eq!(x.add_row_broadcast(&bias).data(), &[11., 22., 13., 24.]);
        let coeff = Tensor::from_vec(2, 1, vec![2., 3.]);
        assert_eq!(x.mul_col_broadcast(&coeff).data(), &[2., 4., 9., 12.]);
    }

    #[test]
    fn gather_and_scatter_are_adjoint_shapes() {
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = x.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2., 5., 6.]);
        let s = g.scatter_add_rows(&[2, 0, 2], 3);
        assert_eq!(s.data(), &[1., 2., 0., 0., 10., 12.]);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 1, vec![9., 10.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        let (l, r) = c.split_cols(2);
        assert_eq!(l.data(), a.data());
        assert_eq!(r.data(), b.data());
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(1, 2, vec![-1.0, 2.0]);
        assert_eq!(x.relu().data(), &[0.0, 2.0]);
        assert_eq!(x.leaky_relu(0.1).data(), &[-0.1, 2.0]);
        let e = x.elu(1.0);
        assert!((e.data()[0] - (-1.0f32).exp_m1()).abs() < 1e-6);
        assert_eq!(e.data()[1], 2.0);
    }

    #[test]
    fn log_softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let ls = x.log_softmax_rows();
        for r in 0..2 {
            let s: f32 = ls.row(r).iter().map(|v| v.exp()).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let x = Tensor::from_vec(5, 1, vec![1., 2., 3., 0.5, 0.5]);
        let sm = x.segment_softmax(&[0, 3, 5]);
        let s1: f32 = sm.data()[..3].iter().sum();
        let s2: f32 = sm.data()[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!((s2 - 1.0).abs() < 1e-5);
        // Equal logits -> equal probabilities.
        assert!((sm.data()[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_handles_empty_segment() {
        let x = Tensor::from_vec(2, 1, vec![1., 1.]);
        let sm = x.segment_softmax(&[0, 0, 2]);
        assert!((sm.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_aggregate_matches_manual_sum() {
        // dst0 <- {0 (w 2), 1 (w 1)}; dst1 <- {2 (w 0.5)}.
        let x = Tensor::from_vec(3, 2, vec![1., 10., 2., 20., 4., 40.]);
        let src = [0u32, 1, 2];
        let off = [0usize, 2, 3];
        let w = [2.0f32, 1.0, 0.5];
        let agg = x.weighted_aggregate(&src, &off, Some(&w));
        assert_eq!(agg.data(), &[4., 40., 2., 20.]);
        let unweighted = x.weighted_aggregate(&src, &off, None);
        assert_eq!(unweighted.data(), &[3., 30., 4., 40.]);
    }

    #[test]
    fn weighted_aggregate_equals_gather_scatter_composition() {
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let src = [3u32, 0, 1, 1, 2];
        let dst = [0u32, 0, 1, 2, 2];
        let off = [0usize, 2, 3, 5];
        let fused = x.weighted_aggregate(&src, &off, None);
        let composed = x.gather_rows(&src).scatter_add_rows(&dst, 3);
        assert_eq!(fused.data(), composed.data());
    }

    #[test]
    fn aggregate_transpose_is_adjoint() {
        // <A x, y> == <x, A^T y> for the linear aggregation operator.
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let y = Tensor::from_vec(2, 2, vec![0.5, -1., 2., 0.25]);
        let src = [0u32, 2, 1];
        let off = [0usize, 2, 3];
        let w = [1.5f32, -0.5, 2.0];
        let ax = x.weighted_aggregate(&src, &off, Some(&w));
        let aty = y.weighted_aggregate_transpose(&src, &off, Some(&w), 3);
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.sum_rows().data(), &[4., 6.]);
        assert!((x.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(x.argmax_rows(), vec![1, 1]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(1, 2, vec![1., 2.]);
        let b = Tensor::from_vec(1, 2, vec![10., 20.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11., 22.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[16., 32.]);
    }
}

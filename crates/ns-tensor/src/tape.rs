//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an append-only arena of operator nodes. Because nodes can
//! only refer to earlier nodes, the arena order is a topological order and
//! the backward pass is a single reverse scan.
//!
//! Unlike a scalar-loss-only autograd API, [`Tape::backward_from`] seeds an
//! *arbitrary* node with an upstream gradient tensor. The distributed
//! runtime uses this to chain per-layer tape segments: the gradient of a
//! layer's output arrives from the next layer (possibly from a remote
//! worker via `PostToDepNbr`) and is injected as the seed.

use std::sync::Arc;
use std::time::Instant;

use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The raw arena index (for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Differentiable operators recorded on the tape.
enum Op {
    /// Leaf: activation input (gradient tracked so it can be shipped
    /// upstream) or trainable parameter.
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddRowBroadcast(Var, Var),
    MulColBroadcast(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Elu(Var, f32),
    GatherRows(Var, Arc<[u32]>),
    ScatterAddRows(Var, Arc<[u32]>),
    /// Fused SpMM-style neighborhood aggregation.
    WeightedAggregate {
        x: Var,
        edge_src: Arc<[u32]>,
        dst_offsets: Arc<[usize]>,
        weights: Option<Arc<[f32]>>,
    },
    /// Max-pooling neighborhood aggregation; `argmax` records the winning
    /// edge per output element for the backward pass.
    MaxAggregate {
        x: Var,
        edge_src: Arc<[u32]>,
        argmax: Arc<[u32]>,
    },
    ConcatCols(Var, Var),
    SegmentSoftmax(Var, Arc<[usize]>),
    LogSoftmaxRows(Var),
    /// `(1 + eps) * h + agg` with scalar `eps` — the GIN combiner.
    EpsCombine {
        eps: Var,
        h: Var,
        agg: Var,
    },
    /// Masked negative log-likelihood against fixed labels.
    NllLoss {
        log_probs: Var,
        labels: Arc<[u32]>,
        weights: Arc<[f32]>,
    },
    SumAll(Var),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// Append-only autograd arena.
pub struct Tape {
    nodes: Vec<Node>,
    flops: u64,
    /// Wall time accrued to graph operators (gather/scatter/aggregate/
    /// segment-softmax), forward and backward combined. See [`Tape::graph_op_ns`].
    graph_ns: u64,
    /// Wall time accrued to NN operators (everything else).
    nn_ns: u64,
    /// Timestamp of the most recent tape event; the gap to the next recorded
    /// op accrues to that op's kind.
    last_event: Instant,
}

impl Default for Tape {
    fn default() -> Self {
        Tape {
            nodes: Vec::new(),
            flops: 0,
            graph_ns: 0,
            nn_ns: 0,
            last_event: Instant::now(),
        }
    }
}

/// Is this operator a *graph* op (neighborhood data movement / aggregation,
/// Fig. 6's decoupled graph-op set) as opposed to an in-worker NN op?
fn is_graph_op(op: &Op) -> bool {
    matches!(
        op,
        Op::GatherRows(..)
            | Op::ScatterAddRows(..)
            | Op::WeightedAggregate { .. }
            | Op::MaxAggregate { .. }
            | Op::SegmentSoftmax(..)
    )
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total FLOPs recorded so far (forward and backward combined).
    /// Monotonically increasing; callers snapshot and diff.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Wall-clock nanoseconds accrued to graph operators so far (forward and
    /// backward combined). Monotonically increasing; callers snapshot and diff.
    ///
    /// Attribution is at tape granularity: the elapsed time between
    /// consecutive tape events accrues to the kind (graph vs NN) of the
    /// operator just recorded, so interleaved flows like GAT attention split
    /// honestly without per-operator instrumentation.
    pub fn graph_op_ns(&self) -> u64 {
        self.graph_ns
    }

    /// Wall-clock nanoseconds accrued to NN operators so far. Counterpart of
    /// [`Tape::graph_op_ns`].
    pub fn nn_op_ns(&self) -> u64 {
        self.nn_ns
    }

    fn push(&mut self, op: Op, value: Tensor, flops: u64) -> Var {
        let now = Instant::now();
        let dt = now.duration_since(self.last_event).as_nanos() as u64;
        self.last_event = now;
        if is_graph_op(&op) {
            self.graph_ns += dt;
        } else {
            self.nn_ns += dt;
        }
        self.flops += flops;
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// Records a leaf holding `value`. Leaves accumulate gradients, which
    /// the caller reads back with [`Tape::grad`] / [`Tape::take_grad`].
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value, 0)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if any backward pass reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Removes and returns the accumulated gradient of `v`.
    pub fn take_grad(&mut self, v: Var) -> Option<Tensor> {
        self.nodes[v.0].grad.take()
    }

    // ---- operators -------------------------------------------------------

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let va = &self.nodes[a.0].value;
        let vb = &self.nodes[b.0].value;
        let flops = 2 * va.rows() as u64 * va.cols() as u64 * vb.cols() as u64;
        let out = va.matmul(vb);
        self.push(Op::MatMul(a, b), out, flops)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        let flops = out.len() as u64;
        self.push(Op::Add(a, b), out, flops)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        let flops = out.len() as u64;
        self.push(Op::Sub(a, b), out, flops)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        let flops = out.len() as u64;
        self.push(Op::Mul(a, b), out, flops)
    }

    /// `a * s` for a constant `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let out = self.nodes[a.0].value.scale(s);
        let flops = out.len() as u64;
        self.push(Op::Scale(a, s), out, flops)
    }

    /// Adds the `1 x d` row vector `bias` to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let out = self.nodes[x.0].value.add_row_broadcast(&self.nodes[bias.0].value);
        let flops = out.len() as u64;
        self.push(Op::AddRowBroadcast(x, bias), out, flops)
    }

    /// Multiplies row `r` of `x` by scalar `coeff[r]` (`coeff` is `n x 1`).
    pub fn mul_col_broadcast(&mut self, x: Var, coeff: Var) -> Var {
        let out = self.nodes[x.0].value.mul_col_broadcast(&self.nodes[coeff.0].value);
        let flops = out.len() as u64;
        self.push(Op::MulColBroadcast(x, coeff), out, flops)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.relu();
        let flops = out.len() as u64;
        self.push(Op::Relu(x), out, flops)
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        let out = self.nodes[x.0].value.leaky_relu(alpha);
        let flops = out.len() as u64;
        self.push(Op::LeakyRelu(x, alpha), out, flops)
    }

    /// ELU.
    pub fn elu(&mut self, x: Var, alpha: f32) -> Var {
        let out = self.nodes[x.0].value.elu(alpha);
        let flops = 2 * out.len() as u64;
        self.push(Op::Elu(x, alpha), out, flops)
    }

    /// Row gather (the differentiable half of `ScatterToEdge`).
    pub fn gather_rows(&mut self, x: Var, idx: Arc<[u32]>) -> Var {
        let out = self.nodes[x.0].value.gather_rows(&idx);
        let flops = out.len() as u64;
        self.push(Op::GatherRows(x, idx), out, flops)
    }

    /// Row scatter-add into `n_out` rows (the differentiable half of
    /// `GatherByDst`).
    pub fn scatter_add_rows(&mut self, x: Var, idx: Arc<[u32]>, n_out: usize) -> Var {
        let out = self.nodes[x.0].value.scatter_add_rows(&idx, n_out);
        let flops = self.nodes[x.0].value.len() as u64;
        self.push(Op::ScatterAddRows(x, idx), out, flops)
    }

    /// Fused neighborhood aggregation (SpMM):
    /// `out[d] = Σ_e weights[e] · x[edge_src[e]]` over each destination's
    /// edge segment, without materializing per-edge rows. The adjoint
    /// scatters the destination gradient back through the same structure.
    pub fn weighted_aggregate(
        &mut self,
        x: Var,
        edge_src: Arc<[u32]>,
        dst_offsets: Arc<[usize]>,
        weights: Option<Arc<[f32]>>,
    ) -> Var {
        let out = self.nodes[x.0].value.weighted_aggregate(
            &edge_src,
            &dst_offsets,
            weights.as_deref(),
        );
        let flops = 2 * edge_src.len() as u64 * out.cols() as u64;
        self.push(
            Op::WeightedAggregate { x, edge_src, dst_offsets, weights },
            out,
            flops,
        )
    }

    /// Max-pooling neighborhood aggregation: `out[d][c] =
    /// max_e x[edge_src[e]][c]` over destination `d`'s edge segment
    /// (0 for empty segments). The adjoint routes each output gradient to
    /// the winning source row.
    pub fn max_aggregate(
        &mut self,
        x: Var,
        edge_src: Arc<[u32]>,
        dst_offsets: Arc<[usize]>,
    ) -> Var {
        let (out, argmax) =
            self.nodes[x.0].value.max_aggregate(&edge_src, &dst_offsets);
        let flops = edge_src.len() as u64 * out.cols() as u64;
        self.push(
            Op::MaxAggregate { x, edge_src, argmax: argmax.into() },
            out,
            flops,
        )
    }

    /// Column concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(Op::ConcatCols(a, b), out, 0)
    }

    /// Softmax over contiguous row segments of an `e x 1` tensor.
    pub fn segment_softmax(&mut self, x: Var, offsets: Arc<[usize]>) -> Var {
        let out = self.nodes[x.0].value.segment_softmax(&offsets);
        let flops = 4 * out.len() as u64;
        self.push(Op::SegmentSoftmax(x, offsets), out, flops)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.log_softmax_rows();
        let flops = 4 * out.len() as u64;
        self.push(Op::LogSoftmaxRows(x), out, flops)
    }

    /// GIN combiner: `(1 + eps) * h + agg` with `eps` a `1 x 1` parameter.
    pub fn eps_combine(&mut self, eps: Var, h: Var, agg: Var) -> Var {
        let e = self.nodes[eps.0].value.scalar_value();
        let out = {
            let vh = &self.nodes[h.0].value;
            let vagg = &self.nodes[agg.0].value;
            let mut out = vh.scale(1.0 + e);
            out.add_assign(vagg);
            out
        };
        let flops = 2 * out.len() as u64;
        self.push(Op::EpsCombine { eps, h, agg }, out, flops)
    }

    /// Masked negative log-likelihood: `sum_r weights[r] * -log_probs[r, labels[r]]`.
    ///
    /// Rows with `weights[r] == 0` contribute nothing (unlabeled vertices).
    pub fn nll_loss(&mut self, log_probs: Var, labels: Arc<[u32]>, weights: Arc<[f32]>) -> Var {
        let lp = &self.nodes[log_probs.0].value;
        assert_eq!(labels.len(), lp.rows(), "nll_loss: label count");
        assert_eq!(weights.len(), lp.rows(), "nll_loss: weight count");
        let mut loss = 0.0f32;
        for (r, (&y, &w)) in labels.iter().zip(weights.iter()).enumerate() {
            if w != 0.0 {
                loss -= w * lp.get(r, y as usize);
            }
        }
        let flops = 2 * lp.rows() as u64;
        self.push(
            Op::NllLoss { log_probs, labels, weights },
            Tensor::scalar(loss),
            flops,
        )
    }

    /// Sum of all elements, as a scalar node.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let out = Tensor::scalar(self.nodes[x.0].value.sum());
        let flops = self.nodes[x.0].value.len() as u64;
        self.push(Op::SumAll(x), out, flops)
    }

    // ---- backward --------------------------------------------------------

    fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.nodes[v.0].grad {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the backward pass from a scalar node, seeding it with gradient
    /// `1.0`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward: loss must be scalar; use backward_from for tensors"
        );
        self.backward_from(loss, Tensor::scalar(1.0));
    }

    /// Runs the backward pass seeding node `root` with gradient `seed`.
    ///
    /// Gradients accumulate into every node reachable from `root`,
    /// including leaves. May be called multiple times; gradients add up.
    pub fn backward_from(&mut self, root: Var, seed: Tensor) {
        assert_eq!(
            self.nodes[root.0].value.shape(),
            seed.shape(),
            "backward_from: seed shape mismatch"
        );
        self.accumulate(root, seed);
        // Graph-op vs NN-op wall-time attribution for the backward scan:
        // accrue each node's elapsed time locally and fold into the tape
        // counters once at the end (the node borrow blocks accruing inline).
        let mut graph_acc = 0u64;
        let mut nn_acc = 0u64;
        let mut last = Instant::now();
        for i in (0..=root.0).rev() {
            // Drain the gradient of interior nodes as we propagate it, so a
            // later `backward_from` call only pushes newly-seeded gradient.
            // Leaves keep their accumulated gradients for the caller.
            let g = if matches!(self.nodes[i].op, Op::Leaf) {
                match self.nodes[i].grad.clone() {
                    Some(g) => g,
                    None => continue,
                }
            } else {
                match self.nodes[i].grad.take() {
                    Some(g) => g,
                    None => continue,
                }
            };
            let node_is_graph = is_graph_op(&self.nodes[i].op);
            // Count backward flops roughly symmetrical to forward.
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let va = self.nodes[a.0].value.clone();
                    let vb = self.nodes[b.0].value.clone();
                    self.flops +=
                        4 * va.rows() as u64 * va.cols() as u64 * vb.cols() as u64;
                    let da = g.matmul_nt(&vb);
                    let db = va.matmul_tn(&g);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.flops += 2 * g.len() as u64;
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    self.flops += 2 * g.len() as u64;
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    self.flops += 2 * g.len() as u64;
                    let da = g.mul(&self.nodes[b.0].value);
                    let db = g.mul(&self.nodes[a.0].value);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    self.flops += g.len() as u64;
                    self.accumulate(a, g.scale(s));
                }
                Op::AddRowBroadcast(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    self.flops += 2 * g.len() as u64;
                    self.accumulate(bias, g.sum_rows());
                    self.accumulate(x, g);
                }
                Op::MulColBroadcast(x, coeff) => {
                    let (x, coeff) = (*x, *coeff);
                    self.flops += 4 * g.len() as u64;
                    let vx = self.nodes[x.0].value.clone();
                    let vc = self.nodes[coeff.0].value.clone();
                    let dx = g.mul_col_broadcast(&vc);
                    let mut dc = Tensor::zeros(vx.rows(), 1);
                    for r in 0..vx.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(vx.row(r).iter())
                            .map(|(a, b)| a * b)
                            .sum();
                        dc.set(r, 0, dot);
                    }
                    self.accumulate(x, dx);
                    self.accumulate(coeff, dc);
                }
                Op::Relu(x) => {
                    let x = *x;
                    self.flops += g.len() as u64;
                    let mut dx = g.clone();
                    for (d, &v) in dx.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::LeakyRelu(x, alpha) => {
                    let (x, alpha) = (*x, *alpha);
                    self.flops += g.len() as u64;
                    let vx = self.nodes[x.0].value.clone();
                    let mut dx = g.clone();
                    for (d, &v) in dx.data_mut().iter_mut().zip(vx.data()) {
                        if v <= 0.0 {
                            *d *= alpha;
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::Elu(x, alpha) => {
                    let (x, alpha) = (*x, *alpha);
                    self.flops += 2 * g.len() as u64;
                    let vx = self.nodes[x.0].value.clone();
                    let vy = self.nodes[i].value.clone();
                    let mut dx = g.clone();
                    for ((d, &xin), &yout) in
                        dx.data_mut().iter_mut().zip(vx.data()).zip(vy.data())
                    {
                        if xin <= 0.0 {
                            // d/dx alpha(e^x - 1) = alpha e^x = y + alpha
                            *d *= yout + alpha;
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::GatherRows(x, idx) => {
                    let x = *x;
                    let idx = Arc::clone(idx);
                    self.flops += g.len() as u64;
                    let n = self.nodes[x.0].value.rows();
                    let dx = g.scatter_add_rows(&idx, n);
                    self.accumulate(x, dx);
                }
                Op::ScatterAddRows(x, idx) => {
                    let x = *x;
                    let idx = Arc::clone(idx);
                    self.flops += g.len() as u64;
                    let dx = g.gather_rows(&idx);
                    self.accumulate(x, dx);
                }
                Op::WeightedAggregate { x, edge_src, dst_offsets, weights } => {
                    let x = *x;
                    let edge_src = Arc::clone(edge_src);
                    let dst_offsets = Arc::clone(dst_offsets);
                    let weights = weights.clone();
                    self.flops += 2 * edge_src.len() as u64 * g.cols() as u64;
                    let n_src = self.nodes[x.0].value.rows();
                    let dx = g.weighted_aggregate_transpose(
                        &edge_src,
                        &dst_offsets,
                        weights.as_deref(),
                        n_src,
                    );
                    self.accumulate(x, dx);
                }
                Op::MaxAggregate { x, edge_src, argmax } => {
                    let x = *x;
                    let edge_src = Arc::clone(edge_src);
                    let argmax = Arc::clone(argmax);
                    self.flops += g.len() as u64;
                    let (rows, cols) = self.nodes[x.0].value.shape();
                    let mut dx = Tensor::zeros(rows, cols);
                    for (i, &winner) in argmax.iter().enumerate() {
                        if winner == u32::MAX {
                            continue;
                        }
                        let src = edge_src[winner as usize] as usize;
                        let c = i % cols;
                        dx.data_mut()[src * cols + c] += g.data()[i];
                    }
                    self.accumulate(x, dx);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let wa = self.nodes[a.0].value.cols();
                    let (ga, gb) = g.split_cols(wa);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::SegmentSoftmax(x, offsets) => {
                    let x = *x;
                    let offsets = Arc::clone(offsets);
                    self.flops += 4 * g.len() as u64;
                    // dx = y * (g - sum_segment(g * y))
                    let y = self.nodes[i].value.clone();
                    let mut dx = Tensor::zeros(y.rows(), 1);
                    for w in offsets.windows(2) {
                        let (s, e) = (w[0], w[1]);
                        let mut dot = 0.0f32;
                        for r in s..e {
                            dot += g.data()[r] * y.data()[r];
                        }
                        for r in s..e {
                            dx.data_mut()[r] = y.data()[r] * (g.data()[r] - dot);
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::LogSoftmaxRows(x) => {
                    let x = *x;
                    self.flops += 4 * g.len() as u64;
                    // dx = g - softmax(x) * rowsum(g)
                    let y = self.nodes[i].value.clone();
                    let mut dx = g.clone();
                    for r in 0..y.rows() {
                        let gsum: f32 = g.row(r).iter().sum();
                        for (d, &lsm) in dx.row_mut(r).iter_mut().zip(y.row(r).iter()) {
                            *d -= lsm.exp() * gsum;
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::EpsCombine { eps, h, agg } => {
                    let (eps, h, agg) = (*eps, *h, *agg);
                    self.flops += 3 * g.len() as u64;
                    let e = self.nodes[eps.0].value.scalar_value();
                    let vh = self.nodes[h.0].value.clone();
                    let deps: f32 = g
                        .data()
                        .iter()
                        .zip(vh.data().iter())
                        .map(|(a, b)| a * b)
                        .sum();
                    self.accumulate(eps, Tensor::scalar(deps));
                    self.accumulate(h, g.scale(1.0 + e));
                    self.accumulate(agg, g);
                }
                Op::NllLoss { log_probs, labels, weights } => {
                    let log_probs = *log_probs;
                    let labels = Arc::clone(labels);
                    let weights = Arc::clone(weights);
                    let gs = g.scalar_value();
                    let lp = &self.nodes[log_probs.0].value;
                    self.flops += lp.rows() as u64;
                    let mut dx = Tensor::zeros(lp.rows(), lp.cols());
                    for (r, (&y, &w)) in labels.iter().zip(weights.iter()).enumerate() {
                        if w != 0.0 {
                            dx.set(r, y as usize, -w * gs);
                        }
                    }
                    self.accumulate(log_probs, dx);
                }
                Op::SumAll(x) => {
                    let x = *x;
                    let gs = g.scalar_value();
                    let shape = self.nodes[x.0].value.shape();
                    self.flops += (shape.0 * shape.1) as u64;
                    self.accumulate(x, Tensor::full(shape.0, shape.1, gs));
                }
            }
            let now = Instant::now();
            let dt = now.duration_since(last).as_nanos() as u64;
            last = now;
            if node_is_graph {
                graph_acc += dt;
            } else {
                nn_acc += dt;
            }
        }
        self.graph_ns += graph_acc;
        self.nn_ns += nn_acc;
        self.last_event = last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference numerical gradient of `f` w.r.t. one input tensor.
    fn numeric_grad(
        f: &dyn Fn(&Tensor) -> f32,
        at: &Tensor,
        eps: f32,
    ) -> Tensor {
        let mut g = Tensor::zeros(at.rows(), at.cols());
        for i in 0..at.len() {
            let mut plus = at.clone();
            plus.data_mut()[i] += eps;
            let mut minus = at.clone();
            minus.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        let d = a.max_abs_diff(b);
        assert!(d < tol, "max abs diff {d} exceeds tol {tol}");
    }

    #[test]
    fn matmul_gradients_match_numeric() {
        let a0 = Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75]);
        let b0 = Tensor::from_vec(3, 2, vec![1.0, 0.5, -0.5, 2.0, 0.25, -1.0]);

        let mut tape = Tape::new();
        let a = tape.leaf(a0.clone());
        let b = tape.leaf(b0.clone());
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);

        let f_a = |x: &Tensor| x.matmul(&b0).sum();
        let f_b = |x: &Tensor| a0.matmul(x).sum();
        assert_close(tape.grad(a).unwrap(), &numeric_grad(&f_a, &a0, 1e-3), 1e-2);
        assert_close(tape.grad(b).unwrap(), &numeric_grad(&f_b, &b0, 1e-3), 1e-2);
    }

    #[test]
    fn relu_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(1, 4, vec![-1.0, 0.5, 2.0, -0.25]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.relu(x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let f = |t: &Tensor| t.relu().sum();
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn elu_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(1, 4, vec![-1.0, 0.5, 2.0, -0.25]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.elu(x, 1.0);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let f = |t: &Tensor| t.elu(1.0).sum();
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn leaky_relu_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(1, 4, vec![-1.0, 0.5, 2.0, -0.25]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.leaky_relu(x, 0.2);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let f = |t: &Tensor| t.leaky_relu(0.2).sum();
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn gather_scatter_gradients() {
        let x0 = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let idx: Arc<[u32]> = Arc::from(vec![2u32, 0, 2].into_boxed_slice());

        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.gather_rows(x, Arc::clone(&idx));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        // Row 2 gathered twice -> grad 2; row 0 once -> 1; row 1 never -> 0.
        assert_eq!(tape.grad(x).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);

        let mut tape2 = Tape::new();
        let x2 = tape2.leaf(x0);
        let s = tape2.scatter_add_rows(x2, idx, 4);
        let loss2 = tape2.sum_all(s);
        tape2.backward(loss2);
        assert_eq!(tape2.grad(x2).unwrap().data(), &[1.; 6]);
    }

    #[test]
    fn segment_softmax_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(5, 1, vec![0.1, -0.4, 0.7, 1.2, -0.3]);
        let offsets: Arc<[usize]> = Arc::from(vec![0usize, 3, 5].into_boxed_slice());
        // Weighted sum so the gradient is not trivially zero (softmax sums
        // to one per segment, so an unweighted sum has zero gradient).
        let w0 = Tensor::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]);

        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let y = tape.segment_softmax(x, Arc::clone(&offsets));
        let p = tape.mul(y, w);
        let loss = tape.sum_all(p);
        tape.backward(loss);

        let off = vec![0usize, 3, 5];
        let f = |t: &Tensor| t.segment_softmax(&off).mul(&w0).sum();
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn log_softmax_nll_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(3, 4, vec![
            0.1, -0.2, 0.3, 0.4, 1.0, 0.0, -1.0, 0.5, -0.3, 0.2, 0.9, -0.8,
        ]);
        let labels: Arc<[u32]> = Arc::from(vec![2u32, 0, 3].into_boxed_slice());
        let weights: Arc<[f32]> = Arc::from(vec![1.0f32, 0.0, 0.5].into_boxed_slice());

        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let lp = tape.log_softmax_rows(x);
        let loss = tape.nll_loss(lp, Arc::clone(&labels), Arc::clone(&weights));
        tape.backward(loss);

        let f = |t: &Tensor| {
            let lp = t.log_softmax_rows();
            let mut l = 0.0;
            for (r, (&y, &w)) in labels.iter().zip(weights.iter()).enumerate() {
                l -= w * lp.get(r, y as usize);
            }
            l
        };
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f, &x0, 1e-3), 1e-2);
    }

    #[test]
    fn eps_combine_gradient_matches_numeric() {
        let h0 = Tensor::from_vec(2, 2, vec![1., -2., 3., 0.5]);
        let a0 = Tensor::from_vec(2, 2, vec![0.5, 0.5, -1., 2.]);
        let e0 = Tensor::scalar(0.3);

        let mut tape = Tape::new();
        let eps = tape.leaf(e0.clone());
        let h = tape.leaf(h0.clone());
        let agg = tape.leaf(a0.clone());
        let y = tape.eps_combine(eps, h, agg);
        let sq = tape.mul(y, y);
        let loss = tape.sum_all(sq);
        tape.backward(loss);

        let f_h = |t: &Tensor| {
            let mut y = t.scale(1.3);
            y.add_assign(&a0);
            y.mul(&y).sum()
        };
        assert_close(tape.grad(h).unwrap(), &numeric_grad(&f_h, &h0, 1e-3), 2e-2);
        let f_e = |t: &Tensor| {
            let mut y = h0.scale(1.0 + t.scalar_value());
            y.add_assign(&a0);
            y.mul(&y).sum()
        };
        assert_close(tape.grad(eps).unwrap(), &numeric_grad(&f_e, &e0, 1e-3), 2e-2);
    }

    #[test]
    fn max_aggregate_forward_and_backward() {
        // dst0 <- {rows 0, 1}; dst1 <- {row 2}; dst2 <- {} (empty).
        let x0 = Tensor::from_vec(3, 2, vec![1., 9., 5., 2., 3., 4.]);
        let edge_src: Arc<[u32]> = vec![0u32, 1, 2].into();
        let offsets: Arc<[usize]> = vec![0usize, 2, 3, 3].into();
        let mut tape = Tape::new();
        let x = tape.leaf(x0);
        let y = tape.max_aggregate(x, edge_src, offsets);
        // dst0 = [max(1,5), max(9,2)] = [5, 9]; dst1 = [3, 4]; dst2 = 0.
        assert_eq!(tape.value(y).data(), &[5., 9., 3., 4., 0., 0.]);
        tape.backward_from(y, Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        // grad routes to winners: row1 col0 (+1), row0 col1 (+2),
        // row2 both (+3, +4); empty dst contributes nothing.
        assert_eq!(tape.grad(x).unwrap().data(), &[0., 2., 1., 0., 3., 4.]);
    }

    #[test]
    fn max_aggregate_matches_numeric_gradient_off_ties() {
        let x0 = Tensor::from_vec(4, 2, vec![0.3, -0.7, 1.2, 0.4, -0.1, 0.9, 0.5, -0.2]);
        let edge_src: Arc<[u32]> = vec![0u32, 1, 2, 3, 1].into();
        let offsets: Arc<[usize]> = vec![0usize, 3, 5].into();
        let w0 = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let y = tape.max_aggregate(x, Arc::clone(&edge_src), Arc::clone(&offsets));
        let p = tape.mul(y, w);
        let loss = tape.sum_all(p);
        tape.backward(loss);
        let grad = tape.grad(x).unwrap().clone();
        // Numeric check.
        let f = |t: &Tensor| {
            let (agg, _) = t.max_aggregate(&edge_src, &offsets);
            agg.mul(&w0).sum()
        };
        let eps = 1e-3;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (grad.data()[i] - num).abs() < 1e-2,
                "elem {i}: {} vs {num}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn backward_from_seeds_arbitrary_node() {
        let x0 = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0);
        let y = tape.scale(x, 3.0);
        let seed = Tensor::from_vec(2, 2, vec![1., 0., 0., 2.]);
        tape.backward_from(y, seed);
        assert_eq!(tape.grad(x).unwrap().data(), &[3., 0., 0., 6.]);
    }

    #[test]
    fn repeated_backward_accumulates() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(5.0));
        let y = tape.scale(x, 2.0);
        tape.backward_from(y, Tensor::scalar(1.0));
        tape.backward_from(y, Tensor::scalar(1.0));
        assert_eq!(tape.grad(x).unwrap().scalar_value(), 4.0);
    }

    #[test]
    fn flops_are_recorded() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::zeros(4, 8));
        let b = tape.leaf(Tensor::zeros(8, 2));
        assert_eq!(tape.flops(), 0);
        let _ = tape.matmul(a, b);
        assert_eq!(tape.flops(), 2 * 4 * 8 * 2);
    }

    #[test]
    fn concat_cols_gradient_splits() {
        let a0 = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b0 = Tensor::from_vec(2, 1, vec![5., 6.]);
        let mut tape = Tape::new();
        let a = tape.leaf(a0);
        let b = tape.leaf(b0);
        let c = tape.concat_cols(a, b);
        let seed = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        tape.backward_from(c, seed);
        assert_eq!(tape.grad(a).unwrap().data(), &[1., 2., 4., 5.]);
        assert_eq!(tape.grad(b).unwrap().data(), &[3., 6.]);
    }

    #[test]
    fn mul_col_broadcast_gradient_matches_numeric() {
        let x0 = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 1.5, -0.5]);
        let c0 = Tensor::from_vec(2, 1, vec![2.0, -0.5]);
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let c = tape.leaf(c0.clone());
        let y = tape.mul_col_broadcast(x, c);
        let sq = tape.mul(y, y);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let f_x = |t: &Tensor| {
            let y = t.mul_col_broadcast(&c0);
            y.mul(&y).sum()
        };
        let f_c = |t: &Tensor| {
            let y = x0.mul_col_broadcast(t);
            y.mul(&y).sum()
        };
        assert_close(tape.grad(x).unwrap(), &numeric_grad(&f_x, &x0, 1e-3), 2e-2);
        assert_close(tape.grad(c).unwrap(), &numeric_grad(&f_c, &c0, 1e-3), 2e-2);
    }
}

//! Dense 2-D `f32` tensors with tape-based reverse-mode automatic
//! differentiation.
//!
//! This crate plays the role that PyTorch's autograd library plays in the
//! original NeutronStar system: it provides the *in-worker* neural-network
//! operators (`EdgeForward`, `VertexForward`, the prediction head) together
//! with automatic gradient computation for them. The distributed framework
//! (crate `ns-runtime`) chains per-layer tape segments across workers
//! exactly as NeutronStar chains per-layer PyTorch autograd graphs through
//! its `GetFromDepNbr`/`PostToDepNbr` dependency-management operators.
//!
//! Design points:
//!
//! * Tensors are strictly two-dimensional (`rows x cols`, row-major). GNN
//!   training only ever manipulates vertex/edge feature matrices, weight
//!   matrices, and scalars (`1 x 1`), so higher ranks would be dead weight.
//! * The [`Tape`] is an append-only arena. Every operator
//!   records the information needed for its adjoint; `backward_from` seeds
//!   an arbitrary node with an upstream gradient, which is what a layered
//!   distributed system needs (the seed for layer `l` arrives from layer
//!   `l+1`, possibly over the network).
//! * Every operator reports its FLOP cost so the cluster simulator in
//!   `ns-net` can replay an epoch on a modeled device.

pub mod checkpoint;
pub mod flops;
pub mod nn;
pub mod optim;
pub mod pool;
pub mod tape;
pub mod tensor;

pub use flops::FlopCounter;
pub use nn::{Init, Linear, Mlp, ParamStore};
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use tape::{Tape, Var};
pub use tensor::Tensor;

/// Error type for tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name for diagnostics.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An index was out of bounds for the tensor it addresses.
    IndexOutOfBounds {
        /// Operation name for diagnostics.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds {bound} in {op}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

//! FLOP accounting shared between the tape and non-tape kernels.
//!
//! The cluster simulator in `ns-net` replays an epoch's compute tasks on a
//! modeled device; the engines obtain those task weights from FLOP counts
//! recorded here and on [`Tape::flops`](crate::Tape::flops).

/// An accumulating FLOP counter with snapshot/delta support.
#[derive(Debug, Default, Clone)]
pub struct FlopCounter {
    total: u64,
}

impl FlopCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `flops` to the counter.
    #[inline]
    pub fn add(&mut self, flops: u64) {
        self.total += flops;
    }

    /// The running total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the FLOPs accumulated since `mark` and advances `mark` to
    /// the current total.
    pub fn delta_since(&self, mark: &mut u64) -> u64 {
        let d = self.total - *mark;
        *mark = self.total;
        d
    }
}

/// FLOPs of a dense `n x k @ k x m` matrix product.
#[inline]
pub fn matmul_flops(n: usize, k: usize, m: usize) -> u64 {
    2 * n as u64 * k as u64 * m as u64
}

/// FLOPs of aggregating `edges` messages of width `dim` (one add per
/// element).
#[inline]
pub fn aggregate_flops(edges: usize, dim: usize) -> u64 {
    edges as u64 * dim as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_diffs() {
        let mut c = FlopCounter::new();
        c.add(100);
        c.add(50);
        assert_eq!(c.total(), 150);
        let mut mark = 0;
        assert_eq!(c.delta_since(&mut mark), 150);
        c.add(25);
        assert_eq!(c.delta_since(&mut mark), 25);
        assert_eq!(c.delta_since(&mut mark), 0);
    }

    #[test]
    fn helper_formulas() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
        assert_eq!(aggregate_flops(10, 16), 160);
    }
}

//! Global tensor-buffer pool: the allocation backbone of the zero-alloc
//! steady state (DESIGN.md §14).
//!
//! GNN training is *shape-stationary*: after the first epoch, every
//! tensor the forward/backward/optimizer path materializes has a shape
//! that was already materialized in the previous epoch. This pool turns
//! that property into an allocation discipline — every [`crate::Tensor`]
//! buffer is taken from an exact-length free list and returned to it on
//! drop, so steady-state epochs recycle the previous epoch's buffers
//! instead of touching the system allocator.
//!
//! Design points:
//!
//! * **Global, not thread-local.** Worker threads exchange tensors (a
//!   gradient allocated on worker 1's thread is dropped on worker 0's),
//!   so per-thread pools would leak buffers from producers and miss on
//!   consumers forever. One process-wide mutex is cheap here: takes and
//!   recycles are O(epoch tensor count), not O(element), and the lock
//!   guards a couple of `Vec` pops.
//! * **Exact-length buckets.** Shapes are stationary, so first-fit or
//!   size-class schemes would only add fragmentation. A buffer is reused
//!   only for a request of exactly its length.
//! * **Bounded residency.** `NS_POOL_BYTES` (default 256 MiB) caps the
//!   bytes parked in free lists; beyond it, recycled buffers fall back to
//!   the allocator. A per-bucket count cap keeps one hot size class from
//!   squeezing out the rest.
//! * **Counted.** `fresh` / `reused` / `recycled` / `dropped` counters
//!   feed the `alloc.*` meters (docs/OBSERVABILITY.md) and the
//!   steady-state allocation test: an epoch that allocates nothing new
//!   shows a zero `fresh` delta.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default cap on bytes parked in the pool's free lists.
const DEFAULT_CAP_BYTES: usize = 256 << 20;

/// Max buffers parked per exact-length bucket.
const BUCKET_CAP: usize = 64;

/// Buffers this small bypass the pool: the allocator's thread-local fast
/// path beats a process-wide mutex for them, and they are too small to
/// matter for steady-state residency. (16 f32 = one cache line.)
const MIN_POOLED_LEN: usize = 16;

/// Cumulative pool activity since process start (monotonic counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool-managed buffers allocated fresh (bucket miss). Sub-cache-line
    /// requests are metered in `bypass`, not here, so a zero `fresh` delta
    /// means "no new *tensor-sized* buffer touched the allocator".
    pub fresh: u64,
    /// Requests below [`MIN_POOLED_LEN`] served straight from the
    /// allocator (scalars and tiny row vectors; never parked).
    pub bypass: u64,
    /// Buffers served from a free list.
    pub reused: u64,
    /// Buffers returned to a free list on drop.
    pub recycled: u64,
    /// Buffers released to the allocator instead (pool full).
    pub dropped: u64,
    /// Bytes allocated fresh.
    pub fresh_bytes: u64,
    /// Bytes currently parked in free lists.
    pub resident_bytes: u64,
}

static FRESH: AtomicU64 = AtomicU64::new(0);
static BYPASS: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);

struct Buckets {
    map: HashMap<usize, Vec<Vec<f32>>>,
    resident_bytes: usize,
    cap_bytes: usize,
}

fn pool() -> &'static Mutex<Buckets> {
    static POOL: OnceLock<Mutex<Buckets>> = OnceLock::new();
    POOL.get_or_init(|| {
        let cap_bytes = std::env::var("NS_POOL_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP_BYTES);
        Mutex::new(Buckets { map: HashMap::new(), resident_bytes: 0, cap_bytes })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Buckets> {
    pool().lock().unwrap_or_else(|e| e.into_inner())
}

/// Takes a length-`len` buffer with **unspecified (stale) contents**.
///
/// The buffer is always fully initialized memory — either zeros from a
/// fresh allocation or whatever the previous owner wrote — so reading it
/// is safe but meaningless. Callers must overwrite every element before
/// the buffer escapes.
pub fn take_scratch(len: usize) -> Vec<f32> {
    if len < MIN_POOLED_LEN {
        BYPASS.fetch_add(1, Ordering::Relaxed);
        return vec![0.0; len];
    }
    {
        let mut g = lock();
        if let Some(buf) = g.map.get_mut(&len).and_then(Vec::pop) {
            g.resident_bytes = g.resident_bytes.saturating_sub(len * 4);
            drop(g);
            REUSED.fetch_add(1, Ordering::Relaxed);
            debug_assert_eq!(buf.len(), len);
            return buf;
        }
    }
    FRESH.fetch_add(1, Ordering::Relaxed);
    FRESH_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    vec![0.0; len]
}

/// Takes a length-`len` buffer filled with `+0.0`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take_scratch(len);
    buf.fill(0.0);
    buf
}

/// Returns a buffer to its exact-length free list (or to the allocator
/// when the pool is at capacity). Called by `Tensor`'s `Drop`.
pub fn recycle(buf: Vec<f32>) {
    let len = buf.len();
    if len < MIN_POOLED_LEN {
        return; // dropped by caller; too small to meter
    }
    let mut g = lock();
    if g.resident_bytes + len * 4 > g.cap_bytes {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let bucket = g.map.entry(len).or_default();
    if bucket.len() >= BUCKET_CAP {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bucket.push(buf);
    g.resident_bytes += len * 4;
    RECYCLED.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the cumulative counters (monotonic except
/// `resident_bytes`). Meters and the steady-state allocation test read
/// deltas between snapshots.
pub fn stats() -> PoolStats {
    PoolStats {
        fresh: FRESH.load(Ordering::Relaxed),
        bypass: BYPASS.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        resident_bytes: lock().resident_bytes as u64,
    }
}

/// Releases every parked buffer to the allocator (counters keep their
/// values). Mainly for memory-pressure tests.
pub fn clear() {
    let mut g = lock();
    g.map.clear();
    g.resident_bytes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pool state is process-global, so these assertions use deltas and
    // unique lengths to stay independent of other tests.

    #[test]
    fn recycled_buffer_is_reused_for_same_length() {
        let len = 4093; // prime, unlikely to collide with other tests
        let before = stats();
        let a = take_scratch(len);
        let ptr = a.as_ptr();
        recycle(a);
        let b = take_scratch(len);
        assert_eq!(b.as_ptr(), ptr, "same buffer must come back");
        let after = stats();
        assert_eq!(after.fresh - before.fresh, 1);
        assert!(after.reused > before.reused);
        recycle(b);
    }

    #[test]
    fn different_length_misses_the_bucket() {
        let a = take_scratch(2039);
        recycle(a);
        let before = stats();
        let b = take_scratch(2040);
        let after = stats();
        assert_eq!(after.fresh - before.fresh, 1, "length mismatch must miss");
        recycle(b);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let len = 3001;
        let mut a = take_scratch(len);
        a.fill(7.5);
        recycle(a);
        let b = take_zeroed(len);
        assert!(b.iter().all(|&v| v == 0.0));
        recycle(b);
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        let before = stats();
        let a = take_scratch(MIN_POOLED_LEN - 1);
        recycle(a);
        let after = stats();
        assert_eq!(after.recycled, before.recycled, "tiny buffers are not parked");
        assert_eq!(after.fresh, before.fresh, "bypass takes are not fresh");
        assert_eq!(after.bypass - before.bypass, 1, "bypass takes are metered");
    }
}

//! Global tensor-buffer pool: the allocation backbone of the zero-alloc
//! steady state (DESIGN.md §14) and the enforcement point of the
//! process memory budget.
//!
//! GNN training is *shape-stationary*: after the first epoch, every
//! tensor the forward/backward/optimizer path materializes has a shape
//! that was already materialized in the previous epoch. This pool turns
//! that property into an allocation discipline — every [`crate::Tensor`]
//! buffer is taken from an exact-length free list and returned to it on
//! drop, so steady-state epochs recycle the previous epoch's buffers
//! instead of touching the system allocator.
//!
//! Design points:
//!
//! * **Global, not thread-local.** Worker threads exchange tensors (a
//!   gradient allocated on worker 1's thread is dropped on worker 0's),
//!   so per-thread pools would leak buffers from producers and miss on
//!   consumers forever. One process-wide mutex is cheap here: takes and
//!   recycles are O(epoch tensor count), not O(element), and the lock
//!   guards a couple of `Vec` pops.
//! * **Exact-length buckets.** Shapes are stationary, so first-fit or
//!   size-class schemes would only add fragmentation. A buffer is reused
//!   only for a request of exactly its length.
//! * **Enforced budget.** `NS_POOL_BYTES` (default 256 MiB) is a budget
//!   on the pool's total footprint — bytes checked out and alive
//!   (`in_use`) plus bytes parked in free lists (`resident`). When the
//!   footprint crosses the budget, parked buffers are shed back to the
//!   allocator before anything new is handed out, and recycles that
//!   would overshoot release to the allocator instead of parking. The
//!   budget can be shrunk mid-run ([`set_cap_bytes`]) — the
//!   memory-pressure fault does exactly that — and the high-water mark
//!   since the budget was last armed is tracked (`alloc.peak_bytes`).
//!   A malformed `NS_POOL_BYTES` value panics with the offending text
//!   rather than being silently swallowed into the default.
//! * **A per-bucket count cap** keeps one hot size class from squeezing
//!   out the rest.
//! * **Counted.** `fresh` / `reused` / `recycled` / `dropped` / `shed`
//!   counters feed the `alloc.*` meters (docs/OBSERVABILITY.md) and the
//!   steady-state allocation test: an epoch that allocates nothing new
//!   shows a zero `fresh` delta.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default budget on the pool's footprint (in-use + parked bytes).
const DEFAULT_CAP_BYTES: usize = 256 << 20;

/// Max buffers parked per exact-length bucket.
const BUCKET_CAP: usize = 64;

/// Buffers this small bypass the pool: the allocator's thread-local fast
/// path beats a process-wide mutex for them, and they are too small to
/// matter for steady-state residency. (16 f32 = one cache line.)
const MIN_POOLED_LEN: usize = 16;

/// Cumulative pool activity since process start (monotonic counters
/// except the residency gauges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool-managed buffers allocated fresh (bucket miss). Sub-cache-line
    /// requests are metered in `bypass`, not here, so a zero `fresh` delta
    /// means "no new *tensor-sized* buffer touched the allocator".
    pub fresh: u64,
    /// Requests below [`MIN_POOLED_LEN`] served straight from the
    /// allocator (scalars and tiny row vectors; never parked).
    pub bypass: u64,
    /// Buffers served from a free list.
    pub reused: u64,
    /// Buffers returned to a free list on drop.
    pub recycled: u64,
    /// Buffers released to the allocator instead (budget or bucket full).
    pub dropped: u64,
    /// Parked buffers evicted to the allocator by budget pressure.
    pub shed: u64,
    /// Bytes evicted by budget pressure.
    pub shed_bytes: u64,
    /// Bytes allocated fresh.
    pub fresh_bytes: u64,
    /// Bytes currently parked in free lists.
    pub resident_bytes: u64,
    /// Bytes currently checked out and alive (taken, not yet recycled).
    pub in_use_bytes: u64,
    /// High-water mark of `in_use + resident` since the budget was last
    /// armed ([`set_cap_bytes`] re-arms; process start arms with the
    /// `NS_POOL_BYTES` budget).
    pub peak_bytes: u64,
    /// The enforced footprint budget.
    pub cap_bytes: u64,
}

static FRESH: AtomicU64 = AtomicU64::new(0);
static BYPASS: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SHED: AtomicU64 = AtomicU64::new(0);
static SHED_BYTES: AtomicU64 = AtomicU64::new(0);
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);

struct Buckets {
    map: HashMap<usize, Vec<Vec<f32>>>,
    resident_bytes: usize,
    in_use_bytes: usize,
    peak_bytes: usize,
    cap_bytes: usize,
}

impl Buckets {
    fn footprint(&self) -> usize {
        self.in_use_bytes + self.resident_bytes
    }

    /// Evicts parked buffers until the footprint fits the budget (or
    /// nothing is parked). Empty buckets are pruned so the map cannot
    /// grow without bound across length classes.
    fn shed_to_budget(&mut self) {
        while self.footprint() > self.cap_bytes && self.resident_bytes > 0 {
            let Some((&len, _)) = self.map.iter().find(|(_, v)| !v.is_empty()) else {
                break;
            };
            let bucket = self.map.get_mut(&len).expect("bucket just found");
            bucket.pop();
            let emptied = bucket.is_empty();
            self.resident_bytes = self.resident_bytes.saturating_sub(len * 4);
            SHED.fetch_add(1, Ordering::Relaxed);
            SHED_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
            // Empty buckets are pruned so the map cannot grow without
            // bound across length classes.
            if emptied {
                self.map.remove(&len);
            }
        }
    }

    fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.footprint());
    }
}

/// Parses an `NS_POOL_BYTES` setting: a plain byte count. `None` (unset)
/// selects the 256 MiB default; anything that is not a base-10 byte
/// count is an error carrying the offending text.
fn parse_cap(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(DEFAULT_CAP_BYTES),
        Some(v) => v.trim().parse::<usize>().map_err(|_| {
            format!(
                "NS_POOL_BYTES must be a byte count (e.g. 268435456), got {v:?}"
            )
        }),
    }
}

fn pool() -> &'static Mutex<Buckets> {
    static POOL: OnceLock<Mutex<Buckets>> = OnceLock::new();
    POOL.get_or_init(|| {
        let raw = std::env::var("NS_POOL_BYTES").ok();
        // A malformed budget must never be silently replaced by the
        // default: the operator asked for a cap and did not get it.
        let cap_bytes = parse_cap(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"));
        Mutex::new(Buckets {
            map: HashMap::new(),
            resident_bytes: 0,
            in_use_bytes: 0,
            peak_bytes: 0,
            cap_bytes,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Buckets> {
    pool().lock().unwrap_or_else(|e| e.into_inner())
}

/// Takes a length-`len` buffer with **unspecified (stale) contents**.
///
/// The buffer is always fully initialized memory — either zeros from a
/// fresh allocation or whatever the previous owner wrote — so reading it
/// is safe but meaningless. Callers must overwrite every element before
/// the buffer escapes.
pub fn take_scratch(len: usize) -> Vec<f32> {
    if len < MIN_POOLED_LEN {
        BYPASS.fetch_add(1, Ordering::Relaxed);
        return vec![0.0; len];
    }
    {
        let mut g = lock();
        g.in_use_bytes += len * 4;
        if g.footprint() > g.cap_bytes {
            g.shed_to_budget();
        }
        g.note_peak();
        if let Some(buf) = g.map.get_mut(&len).and_then(Vec::pop) {
            g.resident_bytes = g.resident_bytes.saturating_sub(len * 4);
            drop(g);
            REUSED.fetch_add(1, Ordering::Relaxed);
            debug_assert_eq!(buf.len(), len);
            return buf;
        }
    }
    FRESH.fetch_add(1, Ordering::Relaxed);
    FRESH_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    vec![0.0; len]
}

/// Takes a length-`len` buffer filled with `+0.0`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take_scratch(len);
    buf.fill(0.0);
    buf
}

/// Returns a buffer to its exact-length free list (or to the allocator
/// when parking it would overshoot the budget). Called by `Tensor`'s
/// `Drop`.
pub fn recycle(buf: Vec<f32>) {
    let len = buf.len();
    if len < MIN_POOLED_LEN {
        return; // dropped by caller; too small to meter
    }
    let mut g = lock();
    g.in_use_bytes = g.in_use_bytes.saturating_sub(len * 4);
    // Park only when the buffer's bytes still fit the budget — the
    // buffer is alive either way until this call returns, but dropping
    // it actually gives the bytes back.
    if g.in_use_bytes + g.resident_bytes + len * 4 > g.cap_bytes {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let bucket = g.map.entry(len).or_default();
    if bucket.len() >= BUCKET_CAP {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    bucket.push(buf);
    g.resident_bytes += len * 4;
    RECYCLED.fetch_add(1, Ordering::Relaxed);
}

/// Re-arms the footprint budget at `cap_bytes`: parked buffers over the
/// new budget are shed immediately, and the `peak_bytes` high-water mark
/// restarts from the current footprint. The memory-pressure fault calls
/// this at its window edges; pass [`default_cap_bytes`]'s value to
/// restore the configured budget.
pub fn set_cap_bytes(cap_bytes: usize) {
    let mut g = lock();
    g.cap_bytes = cap_bytes.max(1);
    g.shed_to_budget();
    g.peak_bytes = g.footprint();
}

/// The budget `NS_POOL_BYTES` configured at process start (the value
/// [`set_cap_bytes`] callers restore after a pressure window heals).
pub fn default_cap_bytes() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let raw = std::env::var("NS_POOL_BYTES").ok();
        parse_cap(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    })
}

/// True when the pool footprint is within 25% of the budget — the signal
/// the executor uses to shrink all-reduce chunks and the serve cache
/// uses to shed rows, trading speed for staying under the cap.
pub fn under_pressure() -> bool {
    let g = lock();
    g.footprint() * 4 >= g.cap_bytes * 3
}

/// Advises a scratch length for divisible work (all-reduce chunking):
/// `want` when the pool has headroom, a quarter of it (floored at one
/// cache line) when the footprint is pressing the budget. More, smaller
/// chunks keep the transfer correct while shrinking the concurrent
/// scratch footprint.
pub fn advise_chunk(want: usize) -> usize {
    if under_pressure() {
        (want / 4).max(MIN_POOLED_LEN)
    } else {
        want
    }
}

/// Snapshot of the cumulative counters (monotonic except the residency
/// gauges). Meters and the steady-state allocation test read deltas
/// between snapshots.
pub fn stats() -> PoolStats {
    let g = lock();
    PoolStats {
        fresh: FRESH.load(Ordering::Relaxed),
        bypass: BYPASS.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        shed: SHED.load(Ordering::Relaxed),
        shed_bytes: SHED_BYTES.load(Ordering::Relaxed),
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        resident_bytes: g.resident_bytes as u64,
        in_use_bytes: g.in_use_bytes as u64,
        peak_bytes: g.peak_bytes as u64,
        cap_bytes: g.cap_bytes as u64,
    }
}

/// Releases every parked buffer to the allocator (counters keep their
/// values). Mainly for memory-pressure tests.
pub fn clear() {
    let mut g = lock();
    g.map.clear();
    g.resident_bytes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pool state is process-global, so these assertions use deltas and
    // unique lengths to stay independent of other tests.

    #[test]
    fn recycled_buffer_is_reused_for_same_length() {
        let len = 4093; // prime, unlikely to collide with other tests
        let before = stats();
        let a = take_scratch(len);
        let ptr = a.as_ptr();
        recycle(a);
        let b = take_scratch(len);
        assert_eq!(b.as_ptr(), ptr, "same buffer must come back");
        let after = stats();
        assert_eq!(after.fresh - before.fresh, 1);
        assert!(after.reused > before.reused);
        recycle(b);
    }

    #[test]
    fn different_length_misses_the_bucket() {
        let a = take_scratch(2039);
        recycle(a);
        let before = stats();
        let b = take_scratch(2040);
        let after = stats();
        assert_eq!(after.fresh - before.fresh, 1, "length mismatch must miss");
        recycle(b);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let len = 3001;
        let mut a = take_scratch(len);
        a.fill(7.5);
        recycle(a);
        let b = take_zeroed(len);
        assert!(b.iter().all(|&v| v == 0.0));
        recycle(b);
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        let before = stats();
        let a = take_scratch(MIN_POOLED_LEN - 1);
        recycle(a);
        let after = stats();
        assert_eq!(after.recycled, before.recycled, "tiny buffers are not parked");
        assert_eq!(after.fresh, before.fresh, "bypass takes are not fresh");
        assert_eq!(after.bypass - before.bypass, 1, "bypass takes are metered");
    }

    #[test]
    fn in_use_and_peak_track_checkouts() {
        let len = 5003;
        let before = stats();
        let a = take_scratch(len);
        let held = stats();
        assert!(
            held.in_use_bytes >= before.in_use_bytes + (len * 4) as u64,
            "take must appear in in_use_bytes"
        );
        assert!(
            held.peak_bytes >= before.in_use_bytes + (len * 4) as u64,
            "peak must cover the checkout"
        );
        recycle(a);
        let after = stats();
        assert!(
            after.in_use_bytes <= held.in_use_bytes - (len * 4) as u64,
            "recycle must return the bytes"
        );
    }

    #[test]
    fn cap_env_parse_accepts_byte_counts_and_default() {
        assert_eq!(parse_cap(None).unwrap(), DEFAULT_CAP_BYTES);
        assert_eq!(parse_cap(Some("1048576")).unwrap(), 1 << 20);
        assert_eq!(parse_cap(Some(" 4096 ")).unwrap(), 4096, "whitespace tolerated");
    }

    #[test]
    fn cap_env_parse_rejects_malformed_values_loudly() {
        for bad in ["256MiB", "lots", "-1", "1e9", ""] {
            let err = parse_cap(Some(bad)).unwrap_err();
            assert!(err.contains("NS_POOL_BYTES"), "{err}");
            assert!(err.contains(bad), "error must carry the bad value: {err}");
        }
    }
}

//! Optimizers operating on a [`ParamStore`] and an id-indexed gradient
//! vector.
//!
//! In the distributed runtime every worker holds a replica of the
//! parameter store and an *identical* (all-reduced) gradient vector, then
//! applies the same deterministic optimizer step — which keeps replicas in
//! exact agreement without broadcasting parameters.

use crate::nn::ParamStore;
use crate::tensor::Tensor;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update step. `grads` is parallel to the store.
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.len(), "gradient vector mismatch");
        let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let wd = self.weight_decay;
            let lr = self.lr;
            let value = store.value_mut(id);
            if wd != 0.0 {
                let decay = value.scale(wd);
                value.axpy(-lr, &decay);
            }
            value.axpy(-lr, &grads[id.index()]);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// Snapshot of Adam's internal state (step count and moment estimates).
///
/// The distributed trainer exports this at checkpoint boundaries and
/// re-imports it after a rollback, so a recovered run replays the *exact*
/// optimizer trajectory — Adam's bias correction depends on `t`, and its
/// moments carry gradient history that fresh state would lose.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Number of steps taken.
    pub t: u64,
    /// First-moment estimates, parallel to the store.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, parallel to the store.
    pub v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Exports the internal state for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState { t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores previously exported state (rollback / resume).
    pub fn import_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.m.len() != store.len() {
            self.m = store.zero_grads();
            self.v = store.zero_grads();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.len(), "gradient vector mismatch");
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            let i = id.index();
            let g = &grads[i];
            let m = &mut self.m[i];
            for (mv, &gv) in m.data_mut().iter_mut().zip(g.data()) {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
            }
            let v = &mut self.v[i];
            for (vv, &gv) in v.data_mut().iter_mut().zip(g.data()) {
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let value = store.value_mut(id);
            for ((pv, &mv), &vv) in value
                .data_mut()
                .iter_mut()
                .zip(self.m[i].data())
                .zip(self.v[i].data())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store() -> (ParamStore, crate::nn::ParamId) {
        let mut store = ParamStore::new();
        let id = store.register("x", Tensor::scalar(10.0));
        (store, id)
    }

    /// Gradient of f(x) = x^2 is 2x; both optimizers should drive x to 0.
    fn run<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let (mut store, id) = quadratic_store();
        for _ in 0..steps {
            let x = store.value(id).scalar_value();
            let grads = vec![Tensor::scalar(2.0 * x)];
            opt.step(&mut store, &grads);
        }
        store.value(id).scalar_value()
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let x = run(Sgd::new(0.1), 100);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let x = run(Adam::new(0.3), 200);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_params_without_grads() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::new(0.1);
        opt.weight_decay = 0.5;
        let grads = vec![Tensor::scalar(0.0)];
        opt.step(&mut store, &grads);
        // x <- x - lr * wd * x = 10 * (1 - 0.05)
        assert!((store.value(id).scalar_value() - 9.5).abs() < 1e-6);
    }

    #[test]
    fn exported_state_resumes_exact_trajectory() {
        let (mut s1, id) = quadratic_store();
        let mut o1 = Adam::new(0.1);
        for _ in 0..5 {
            let g = vec![Tensor::scalar(2.0 * s1.value(id).scalar_value())];
            o1.step(&mut s1, &g);
        }
        // Snapshot params + optimizer state, then continue both in
        // lockstep: the resumed run must match bitwise.
        let mut s2 = s1.clone();
        let mut o2 = Adam::new(0.1);
        o2.import_state(o1.export_state());
        // A fresh optimizer (no imported moments) must diverge.
        let mut s3 = s1.clone();
        let mut o3 = Adam::new(0.1);
        for _ in 0..5 {
            for (s, o) in [(&mut s1, &mut o1), (&mut s2, &mut o2), (&mut s3, &mut o3)] {
                let g = vec![Tensor::scalar(2.0 * s.value(id).scalar_value())];
                o.step(s, &g);
            }
        }
        assert_eq!(s1.value(id).scalar_value(), s2.value(id).scalar_value());
        assert_ne!(s1.value(id).scalar_value(), s3.value(id).scalar_value());
    }

    #[test]
    fn identical_steps_keep_replicas_in_sync() {
        let (mut s1, id) = quadratic_store();
        let (mut s2, _) = quadratic_store();
        let mut o1 = Adam::new(0.05);
        let mut o2 = Adam::new(0.05);
        for _ in 0..10 {
            let g = vec![Tensor::scalar(2.0 * s1.value(id).scalar_value())];
            o1.step(&mut s1, &g);
            o2.step(&mut s2, &g);
        }
        assert_eq!(s1.value(id).scalar_value(), s2.value(id).scalar_value());
    }
}

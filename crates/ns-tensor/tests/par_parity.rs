//! Bit-identity of the parallel tensor kernels across thread counts.
//!
//! Every hot kernel is partitioned by destination row (DESIGN.md §11), so
//! the floating-point accumulation order per output element is the same
//! at any thread count — the register-tiled matmuls and column-tiled
//! aggregation only regroup *which* output elements a step computes,
//! never the per-element `k`/edge order. These property-style tests draw
//! random shapes, contents (including exact zeros), and edge structures,
//! and assert *exact* equality — not tolerance — between 1-thread and
//! multi-thread runs. The chaos harness and the `--threads` trainer
//! parity suite both lean on this guarantee.

use ns_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: u64 = 12;
const THREAD_COUNTS: [usize; 4] = [2, 3, 4, 8];

fn rand_f32(rng: &mut StdRng) -> f32 {
    // Mix in exact zeros so signed-zero handling is exercised.
    let v: f32 = rng.random_range(-2.0..2.0);
    if rng.random_range(0..8) == 0 {
        0.0
    } else {
        v
    }
}

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| rand_f32(rng)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// A random CSR edge structure: `n_dst + 1` offsets plus per-edge sources
/// into `0..n_src` and per-edge weights.
fn rand_csr(rng: &mut StdRng, n_dst: usize, n_src: usize) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
    let mut offsets = Vec::with_capacity(n_dst + 1);
    offsets.push(0usize);
    let mut edge_src = Vec::new();
    let mut weights = Vec::new();
    for _ in 0..n_dst {
        // Degree 0 included: empty segments must behave identically too.
        let deg = rng.random_range(0..7usize);
        for _ in 0..deg {
            edge_src.push(rng.random_range(0..n_src) as u32);
            weights.push(rng.random_range(-1.0..1.0f32));
        }
        offsets.push(edge_src.len());
    }
    (offsets, edge_src, weights)
}

/// Runs `f` once per configured thread count and asserts every run's
/// output equals the 1-thread baseline bit for bit.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    ns_par::set_threads(1);
    let base = f();
    for &t in &THREAD_COUNTS {
        ns_par::set_threads(t);
        let got = f();
        assert_eq!(got, base, "{label}: {t}-thread run diverged from 1-thread");
    }
    ns_par::set_threads(1);
}

#[test]
fn matmul_family_is_bit_identical_across_thread_counts() {
    for seed in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(seed);
        // Above the parallel threshold (n*k*m >= 2^15) in most draws,
        // below it in some — both dispatch paths must agree.
        let n = rng.random_range(1..80usize);
        let k = rng.random_range(1..48usize);
        let m = rng.random_range(1..48usize);
        let a = rand_tensor(&mut rng, n, k);
        let b = rand_tensor(&mut rng, k, m);
        let at = rand_tensor(&mut rng, k, n);
        let bt = rand_tensor(&mut rng, m, k);
        assert_thread_invariant("matmul", || a.matmul(&b).into_vec());
        assert_thread_invariant("matmul_tn", || at.matmul_tn(&b).into_vec());
        assert_thread_invariant("matmul_nt", || a.matmul_nt(&bt).into_vec());
    }
}

#[test]
fn matmul_tn_nt_still_match_explicit_transpose_when_parallel() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = rand_tensor(&mut rng, 96, 40);
    let b = rand_tensor(&mut rng, 96, 36);
    let c = rand_tensor(&mut rng, 33, 40);
    ns_par::set_threads(4);
    assert_eq!(a.matmul_tn(&b).data(), a.transpose().matmul(&b).data());
    assert_eq!(c.matmul_nt(&a).data(), c.matmul(&a.transpose()).data());
    ns_par::set_threads(1);
}

#[test]
fn gather_scatter_are_bit_identical_across_thread_counts() {
    for seed in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let rows = rng.random_range(1..300usize);
        let cols = rng.random_range(1..40usize);
        let x = rand_tensor(&mut rng, rows, cols);
        let n_idx = rng.random_range(1..400usize);
        let idx: Vec<u32> = (0..n_idx)
            .map(|_| rng.random_range(0..rows) as u32)
            .collect();
        assert_thread_invariant("gather_rows", || x.gather_rows(&idx).into_vec());
        let g = x.gather_rows(&idx);
        // Duplicate destinations force multi-contribution rows, the case
        // where accumulation order matters.
        assert_thread_invariant("scatter_add_rows", || {
            g.scatter_add_rows(&idx, rows).into_vec()
        });
    }
}

#[test]
fn csr_aggregation_is_bit_identical_across_thread_counts() {
    for seed in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let n_src = rng.random_range(1..200usize);
        let n_dst = rng.random_range(1..200usize);
        let cols = rng.random_range(1..40usize);
        let x = rand_tensor(&mut rng, n_src, cols);
        let (offsets, edge_src, weights) = rand_csr(&mut rng, n_dst, n_src);
        assert_thread_invariant("weighted_aggregate(unweighted)", || {
            x.weighted_aggregate(&edge_src, &offsets, None).into_vec()
        });
        assert_thread_invariant("weighted_aggregate(weighted)", || {
            x.weighted_aggregate(&edge_src, &offsets, Some(&weights))
                .into_vec()
        });
        let grad = rand_tensor(&mut rng, n_dst, cols);
        assert_thread_invariant("weighted_aggregate_transpose", || {
            grad.weighted_aggregate_transpose(&edge_src, &offsets, Some(&weights), n_src)
                .into_vec()
        });
        assert_thread_invariant("max_aggregate", || {
            let (t, arg) = x.max_aggregate(&edge_src, &offsets);
            (t.into_vec(), arg)
        });
    }
}

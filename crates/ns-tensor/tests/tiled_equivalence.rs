//! Exact equivalence of the register-tiled matmul family against a naive
//! triple-loop reference.
//!
//! The tiled kernels (MR x NR accumulator blocks over packed B panels,
//! `tensor.rs`) promise *bit-identical* results to the textbook `i-j-k`
//! loop: tiling regroups which output elements a step computes, never the
//! per-element ascending-`k` accumulation order, and rustc performs no
//! FP contraction or reassociation. These tests pin that promise across
//! odd/prime/tail-heavy shapes in `1..=64` — every combination of full
//! MR-row groups, row tails, full NR-column panels, and column tails.

use ns_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive reference: `out[i][j] = sum_k a[i][k] * b[k][j]`, `k` ascending —
/// the exact per-element order the tiled kernel must reproduce.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let (n, k) = (a.rows(), a.cols());
    let m = b.cols();
    assert_eq!(b.rows(), k);
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += ad[i * k + kk] * bd[kk * m + j];
            }
            out[i * m + j] = acc;
        }
    }
    out
}

fn rand_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| {
            // Exact zeros and negative zeros included: the kernels have no
            // zero-skip, so ±0.0 must flow through arithmetic unchanged.
            match rng.random_range(0..10) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.random_range(-2.0..2.0f32),
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Odd, prime, and tile-boundary shape values in `1..=64`: around the
/// MR (4) and NR (8) tile widths, primes that never divide either, and
/// the extremes.
const SHAPES: [usize; 12] = [1, 2, 3, 4, 5, 7, 8, 9, 13, 31, 37, 64];

fn check_triple(rng: &mut StdRng, n: usize, k: usize, m: usize) {
    let a = rand_tensor(rng, n, k);
    let b = rand_tensor(rng, k, m);
    let reference = naive_matmul(&a, &b);
    let tiled = a.matmul(&b);
    assert_eq!(tiled.data(), &reference[..], "matmul {n}x{k}x{m}");

    // matmul_tn(x, b) computes transpose(x) @ b; feed it the transposed
    // operand so all three variants must reproduce the same reference.
    let at = a.transpose();
    let tn = at.matmul_tn(&b);
    assert_eq!(tn.data(), &reference[..], "matmul_tn {n}x{k}x{m}");

    let bt = b.transpose();
    let nt = a.matmul_nt(&bt);
    assert_eq!(nt.data(), &reference[..], "matmul_nt {n}x{k}x{m}");
}

#[test]
fn tiled_matmul_family_equals_naive_reference_on_odd_prime_shapes() {
    ns_par::set_threads(1);
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for &n in &SHAPES {
        for &k in &SHAPES {
            for &m in &SHAPES {
                check_triple(&mut rng, n, k, m);
            }
        }
    }
}

#[test]
fn tiled_matmul_family_equals_naive_reference_on_random_shapes() {
    ns_par::set_threads(1);
    let mut rng = StdRng::seed_from_u64(0xBEE5);
    for _ in 0..40 {
        let n = rng.random_range(1..=64usize);
        let k = rng.random_range(1..=64usize);
        let m = rng.random_range(1..=64usize);
        check_triple(&mut rng, n, k, m);
    }
}

#[test]
fn tiled_matmul_equals_naive_reference_above_parallel_threshold() {
    // Shapes big enough that par_rows fans out; the reference must still
    // match exactly at every thread count (row blocks never change the
    // per-element k order).
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let a = rand_tensor(&mut rng, 97, 53);
    let b = rand_tensor(&mut rng, 53, 61);
    let reference = naive_matmul(&a, &b);
    for threads in [1usize, 2, 3, 4, 8] {
        ns_par::set_threads(threads);
        assert_eq!(a.matmul(&b).data(), &reference[..], "{threads} threads");
    }
    ns_par::set_threads(1);
}

//! Property-based tests for the tensor kernels and autograd tape.

use proptest::prelude::*;
use std::sync::Arc;

use ns_tensor::{checkpoint, ParamStore, Tape, Tensor};

prop_compose! {
    fn tensor_strategy(max_rows: usize, max_cols: usize)
        (rows in 1..max_rows, cols in 1..max_cols)
        (rows in Just(rows), cols in Just(cols),
         data in prop::collection::vec(-10.0f32..10.0, rows * cols))
        -> Tensor
    {
        Tensor::from_vec(rows, cols, data)
    }
}

fn tensor_with(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| (((i as u64 + 1).wrapping_mul(seed * 2 + 1) % 997) as f32 - 498.0) / 100.0)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transpose is an involution and swaps shape.
    #[test]
    fn transpose_involution(t in tensor_strategy(12, 12)) {
        let tt = t.transpose().transpose();
        prop_assert_eq!(t.shape(), tt.shape());
        prop_assert_eq!(t.data(), tt.data());
    }

    /// matmul_tn / matmul_nt agree with explicit transposes.
    #[test]
    fn fused_transpose_matmuls(seed in 0u64..500, n in 1usize..8, k in 1usize..8, m in 1usize..8) {
        let a = tensor_with(k, n, seed);
        let b = tensor_with(k, m, seed + 1);
        let direct = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(direct.max_abs_diff(&explicit) < 1e-3);

        let c = tensor_with(n, k, seed + 2);
        let d = tensor_with(m, k, seed + 3);
        let direct = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transpose());
        prop_assert!(direct.max_abs_diff(&explicit) < 1e-3);
    }

    /// Matrix product distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..500, n in 1usize..6, k in 1usize..6, m in 1usize..6) {
        let a = tensor_with(n, k, seed);
        let b = tensor_with(n, k, seed + 7);
        let c = tensor_with(k, m, seed + 13);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    /// ⟨Ax, y⟩ = ⟨x, Aᵀy⟩ for the aggregation operator with arbitrary
    /// edge structure.
    #[test]
    fn aggregation_adjoint_identity(
        seed in 0u64..500,
        n_src in 1usize..10,
        n_dst in 1usize..10,
        edges in 0usize..40,
    ) {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_dst];
        for e in 0..edges {
            let d = (e * 7 + seed as usize) % n_dst;
            let s = (e * 13 + seed as usize * 3) % n_src;
            lists[d].push(s as u32);
        }
        let mut edge_src = Vec::new();
        let mut offsets = vec![0usize];
        let mut weights = Vec::new();
        for list in &lists {
            for (i, &s) in list.iter().enumerate() {
                edge_src.push(s);
                weights.push(((i + 1) as f32) * 0.3 - 0.5);
            }
            offsets.push(edge_src.len());
        }
        let x = tensor_with(n_src, 3, seed + 1);
        let y = tensor_with(n_dst, 3, seed + 2);
        let ax = x.weighted_aggregate(&edge_src, &offsets, Some(&weights));
        let aty = y.weighted_aggregate_transpose(&edge_src, &offsets, Some(&weights), n_src);
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Row softmax produces a probability distribution per row.
    #[test]
    fn log_softmax_rows_are_distributions(t in tensor_strategy(8, 8)) {
        let ls = t.log_softmax_rows();
        for r in 0..t.rows() {
            let sum: f32 = ls.row(r).iter().map(|v| v.exp()).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(ls.row(r).iter().all(|&v| v <= 1e-6));
        }
    }

    /// The tape gradient of sum(elu(xW + b)) matches central differences
    /// for arbitrary shapes and values (ELU is C¹, so central differences
    /// are reliable everywhere, unlike ReLU's kink).
    #[test]
    fn tape_affine_elu_gradcheck(seed in 0u64..200, n in 1usize..5, k in 1usize..5, m in 1usize..5) {
        let x0 = tensor_with(n, k, seed);
        let w0 = tensor_with(k, m, seed + 1).scale(0.1);
        let b0 = tensor_with(1, m, seed + 2).scale(0.1);

        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let b = tape.leaf(b0.clone());
        let xw = tape.matmul(x, w);
        let z = tape.add_row_broadcast(xw, b);
        let y = tape.elu(z, 1.0);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let gw = tape.grad(w).unwrap().clone();

        let f = |wt: &Tensor| x0.matmul(wt).add_row_broadcast(&b0).elu(1.0).sum();
        let eps = 1e-2;
        for i in 0..w0.len() {
            let mut p = w0.clone();
            p.data_mut()[i] += eps;
            let mut q = w0.clone();
            q.data_mut()[i] -= eps;
            let num = (f(&p) - f(&q)) / (2.0 * eps);
            prop_assert!((gw.data()[i] - num).abs() < 0.05 + 0.02 * num.abs(),
                "elem {i}: {} vs {num}", gw.data()[i]);
        }
    }

    /// Gather followed by its adjoint (scatter-add through the same index)
    /// conserves total mass for a uniform gradient.
    #[test]
    fn gather_scatter_conserves_mass(
        seed in 0u64..300,
        n in 1usize..10,
        picks in 1usize..20,
    ) {
        let x = tensor_with(n, 2, seed);
        let idx: Vec<u32> = (0..picks).map(|i| ((i * 31 + seed as usize) % n) as u32).collect();
        let idx: Arc<[u32]> = idx.into();
        let mut tape = Tape::new();
        let xv = tape.leaf(x);
        let g = tape.gather_rows(xv, Arc::clone(&idx));
        let rows = tape.value(g).rows();
        tape.backward_from(g, Tensor::full(rows, 2, 1.0));
        let grad_sum = tape.grad(xv).unwrap().sum();
        prop_assert!((grad_sum - (picks * 2) as f32).abs() < 1e-3);
    }

    /// Checkpoint save → load round-trips bit-identically for arbitrary
    /// parameter-store shapes (the recovery path depends on exact
    /// restores for deterministic trajectory replay).
    #[test]
    fn checkpoint_roundtrip_bit_identical(
        seed in 0u64..500,
        shapes in prop::collection::vec((1usize..12, 1usize..12), 0..6),
    ) {
        let mut store = ParamStore::new();
        for (i, &(rows, cols)) in shapes.iter().enumerate() {
            store.register(format!("p{i}"), tensor_with(rows, cols, seed + i as u64));
        }
        let mut buf = Vec::new();
        checkpoint::save(&store, &mut buf).unwrap();
        let loaded = checkpoint::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(loaded.iter()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(v1.shape(), v2.shape());
            prop_assert_eq!(v1.data(), v2.data());
        }
    }

    /// Truncating a checkpoint anywhere yields `io::Error`, never a panic
    /// or a silently short store.
    #[test]
    fn truncated_checkpoint_is_an_error(
        seed in 0u64..200,
        rows in 1usize..8,
        cols in 1usize..8,
        cut in 0.0f64..1.0,
    ) {
        let mut store = ParamStore::new();
        store.register("w", tensor_with(rows, cols, seed));
        store.register("b", tensor_with(1, cols, seed + 1));
        let mut buf = Vec::new();
        checkpoint::save(&store, &mut buf).unwrap();
        let keep = ((buf.len() - 1) as f64 * cut) as usize;
        buf.truncate(keep);
        prop_assert!(checkpoint::load(&mut buf.as_slice()).is_err());
    }

    /// Corrupting the magic yields `io::Error`, never a panic.
    #[test]
    fn corrupted_magic_is_an_error(seed in 0u64..200, byte in 0usize..8) {
        let mut store = ParamStore::new();
        store.register("w", tensor_with(3, 3, seed));
        let mut buf = Vec::new();
        checkpoint::save(&store, &mut buf).unwrap();
        buf[byte] ^= 0xA5;
        prop_assert!(checkpoint::load(&mut buf.as_slice()).is_err());
    }
}

//! Graph partitioners.
//!
//! NeutronStar's dependency partitioning is deliberately decoupled from
//! graph partitioning (§3, "Graph Partitioning"); the paper uses
//! chunk-based partitioning by default and demonstrates orthogonality with
//! METIS and Fennel in §5.7. This module provides all three, behind one
//! [`Partitioner`] enum, plus cut-quality statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

use crate::csr::{CsrGraph, VertexId};

/// Which worker owns each vertex.
#[derive(Debug, Clone)]
pub struct Partitioning {
    owner: Vec<u16>,
    parts: usize,
}

impl Partitioning {
    /// Wraps an owner array. Panics if any owner id is out of range.
    pub fn new(owner: Vec<u16>, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        assert!(
            owner.iter().all(|&o| (o as usize) < parts),
            "owner id out of range"
        );
        Self { owner, parts }
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The worker that owns vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Vertices owned by `part`, ascending.
    pub fn part_vertices(&self, part: usize) -> Vec<VertexId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == part)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Sizes of all partitions.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints live on different workers.
    pub fn edge_cut(&self, graph: &CsrGraph) -> usize {
        graph
            .edges()
            .filter(|&(u, v, _)| self.owner(u) != self.owner(v))
            .count()
    }

    /// Fraction of edges cut.
    pub fn cut_fraction(&self, graph: &CsrGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        self.edge_cut(graph) as f64 / graph.num_edges() as f64
    }

    /// For each partition, the number of *distinct remote* in-neighbors of
    /// its vertices — the per-layer dependency set size `|D_i|` that both
    /// DepComm traffic and DepCache replication scale with.
    pub fn remote_dependency_counts(&self, graph: &CsrGraph) -> Vec<usize> {
        let mut sets: Vec<FxHashSet<VertexId>> = vec![FxHashSet::default(); self.parts];
        for v in 0..graph.num_vertices() as VertexId {
            let p = self.owner(v);
            for &u in graph.in_neighbors(v) {
                if self.owner(u) != p {
                    sets[p].insert(u);
                }
            }
        }
        sets.into_iter().map(|s| s.len()).collect()
    }

    /// Load imbalance: `max_part_size / ideal_size`.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.owner.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// The partitioning algorithms available to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Contiguous vertex-id ranges balanced by in-edge count (the
    /// chunk-based scheme of Gemini that the paper adopts by default).
    Chunk,
    /// Greedy BFS-grown balanced parts with boundary refinement — a
    /// lightweight stand-in for METIS's multilevel edge-cut minimizer.
    MetisLike,
    /// Fennel streaming partitioning (Tsourakakis et al., WSDM'14).
    Fennel,
}

impl Partitioner {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Partitioner::Chunk => "chunk",
            Partitioner::MetisLike => "metis-like",
            Partitioner::Fennel => "fennel",
        }
    }

    /// Partitions `graph` into `parts` pieces.
    pub fn partition(self, graph: &CsrGraph, parts: usize) -> Partitioning {
        assert!(parts >= 1, "need at least one partition");
        assert!(parts <= u16::MAX as usize, "too many partitions");
        match self {
            Partitioner::Chunk => chunk(graph, parts),
            Partitioner::MetisLike => metis_like(graph, parts),
            Partitioner::Fennel => fennel(graph, parts),
        }
    }
}

/// Contiguous ranges with balanced `vertices + in-edges` weight, the
/// chunk-based partitioning of Gemini/NeutronStar: cache-friendly, keeps
/// natural locality of ordered graphs, and balances compute load.
fn chunk(graph: &CsrGraph, parts: usize) -> Partitioning {
    let n = graph.num_vertices();
    let total_weight: usize = n + graph.num_edges();
    let target = total_weight.div_ceil(parts);
    let mut owner = vec![0u16; n];
    let mut part = 0usize;
    let mut acc = 0usize;
    for v in 0..n {
        if acc >= target && part + 1 < parts {
            part += 1;
            acc = 0;
        }
        owner[v] = part as u16;
        acc += 1 + graph.in_degree(v as VertexId);
    }
    Partitioning::new(owner, parts)
}

/// Greedy graph growing + refinement: seeds one BFS per part round-robin,
/// then runs boundary-refinement sweeps moving vertices to the part where
/// most of their neighbors live, subject to a balance cap. This emulates
/// the edge-cut quality ordering of METIS without the multilevel machinery.
fn metis_like(graph: &CsrGraph, parts: usize) -> Partitioning {
    let n = graph.num_vertices();
    let mut owner: Vec<i32> = vec![-1; n];
    let cap = (n as f64 / parts as f64 * 1.05).ceil() as usize;
    let mut sizes = vec![0usize; parts];
    let mut queues: Vec<std::collections::VecDeque<VertexId>> =
        (0..parts).map(|_| std::collections::VecDeque::new()).collect();
    let mut rng = StdRng::seed_from_u64(0x6e75);
    for q in queues.iter_mut() {
        q.push_back(rng.random_range(0..n) as VertexId);
    }
    let mut assigned = 0usize;
    let mut scan = 0usize;
    while assigned < n {
        let mut progressed = false;
        for p in 0..parts {
            if sizes[p] >= cap {
                continue;
            }
            while let Some(v) = queues[p].pop_front() {
                if owner[v as usize] >= 0 {
                    continue;
                }
                owner[v as usize] = p as i32;
                sizes[p] += 1;
                assigned += 1;
                progressed = true;
                for &u in graph.in_neighbors(v).iter().chain(graph.out_neighbors(v)) {
                    if owner[u as usize] < 0 {
                        queues[p].push_back(u);
                    }
                }
                break;
            }
        }
        if !progressed {
            // All queues exhausted (disconnected remainder): reseed the
            // smallest part with the next unassigned vertex.
            while scan < n && owner[scan] >= 0 {
                scan += 1;
            }
            if scan >= n {
                break;
            }
            let p = (0..parts).min_by_key(|&p| sizes[p]).unwrap();
            queues[p].push_back(scan as VertexId);
        }
    }
    // Refinement sweeps.
    for _ in 0..2 {
        for v in 0..n as VertexId {
            let cur = owner[v as usize] as usize;
            let mut counts = vec![0usize; parts];
            for &u in graph.in_neighbors(v).iter().chain(graph.out_neighbors(v)) {
                counts[owner[u as usize] as usize] += 1;
            }
            if let Some(best) = (0..parts).max_by_key(|&p| counts[p]) {
                if best != cur && counts[best] > counts[cur] && sizes[best] < cap {
                    sizes[cur] -= 1;
                    sizes[best] += 1;
                    owner[v as usize] = best as i32;
                }
            }
        }
    }
    Partitioning::new(owner.into_iter().map(|o| o as u16).collect(), parts)
}

/// Fennel streaming partitioning with the standard parameters γ = 1.5,
/// α = m·k^(γ-1)/n^γ, and balance slack ν = 1.1.
fn fennel(graph: &CsrGraph, parts: usize) -> Partitioning {
    let n = graph.num_vertices();
    let m = graph.num_edges().max(1);
    let gamma = 1.5f64;
    let alpha = m as f64 * (parts as f64).powf(gamma - 1.0) / (n as f64).powf(gamma);
    let cap = (n as f64 / parts as f64 * 1.1).ceil() as usize;
    let mut owner = vec![0u16; n];
    let mut assigned = vec![false; n];
    let mut sizes = vec![0usize; parts];
    for v in 0..n as VertexId {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..parts {
            if sizes[p] >= cap {
                continue;
            }
            let mut local = 0usize;
            for &u in graph.in_neighbors(v).iter().chain(graph.out_neighbors(v)) {
                if assigned[u as usize] && owner[u as usize] as usize == p {
                    local += 1;
                }
            }
            let penalty = alpha * gamma * (sizes[p] as f64).powf(gamma - 1.0);
            let score = local as f64 - penalty;
            if score > best_score {
                best_score = score;
                best = p;
            }
        }
        owner[v as usize] = best as u16;
        assigned[v as usize] = true;
        sizes[best] += 1;
    }
    Partitioning::new(owner, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat;

    fn test_graph() -> CsrGraph {
        let edges = rmat(2000, 12_000, (0.57, 0.19, 0.19), 11);
        CsrGraph::from_edges(2000, &edges, true)
    }

    #[test]
    fn all_partitioners_cover_all_vertices() {
        let g = test_graph();
        for p in [Partitioner::Chunk, Partitioner::MetisLike, Partitioner::Fennel] {
            let part = p.partition(&g, 4);
            assert_eq!(part.num_parts(), 4);
            assert_eq!(part.part_sizes().iter().sum::<usize>(), 2000);
            let mut all: Vec<u32> = (0..4).flat_map(|i| part.part_vertices(i)).collect();
            all.sort_unstable();
            assert_eq!(all, (0..2000u32).collect::<Vec<_>>(), "{}", p.name());
        }
    }

    #[test]
    fn chunk_is_contiguous_and_edge_balanced() {
        let g = test_graph();
        let part = Partitioner::Chunk.partition(&g, 4);
        // Contiguity: owner array is non-decreasing.
        let owners: Vec<usize> = (0..2000u32).map(|v| part.owner(v)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        // Edge balance within 2x of ideal.
        let mut edge_loads = vec![0usize; 4];
        for v in 0..2000u32 {
            edge_loads[part.owner(v)] += g.in_degree(v);
        }
        let ideal = g.num_edges() / 4;
        for load in edge_loads {
            assert!(load < 2 * ideal + 2000, "edge load {load} vs ideal {ideal}");
        }
    }

    #[test]
    fn metis_like_cuts_fewer_edges_than_chunk_on_random_ids() {
        // Shuffle vertex ids so chunk has no locality to exploit.
        let edges = rmat(1500, 9000, (0.45, 0.22, 0.22), 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut perm: Vec<u32> = (0..1500).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let shuffled: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        let g = CsrGraph::from_edges(1500, &shuffled, true);
        let chunk_cut = Partitioner::Chunk.partition(&g, 4).cut_fraction(&g);
        let metis_cut = Partitioner::MetisLike.partition(&g, 4).cut_fraction(&g);
        assert!(
            metis_cut < chunk_cut,
            "metis-like {metis_cut} should beat chunk {chunk_cut}"
        );
    }

    #[test]
    fn fennel_respects_balance_slack() {
        let g = test_graph();
        let part = Partitioner::Fennel.partition(&g, 4);
        assert!(part.imbalance() <= 1.15, "imbalance {}", part.imbalance());
    }

    #[test]
    fn remote_dependency_counts_are_consistent_with_cut() {
        let g = test_graph();
        let part = Partitioner::Chunk.partition(&g, 4);
        let deps = part.remote_dependency_counts(&g);
        let cut = part.edge_cut(&g);
        // Distinct remote sources never exceed cut edges.
        assert!(deps.iter().sum::<usize>() <= cut);
        if cut > 0 {
            assert!(deps.iter().sum::<usize>() > 0);
        }
    }

    #[test]
    fn single_partition_owns_everything() {
        let g = test_graph();
        let part = Partitioner::Chunk.partition(&g, 1);
        assert_eq!(part.edge_cut(&g), 0);
        assert_eq!(part.part_sizes(), vec![2000]);
        assert_eq!(part.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "owner id out of range")]
    fn partitioning_validates_owner_range() {
        Partitioning::new(vec![0, 3], 2);
    }
}

//! Graph and partitioning statistics: the diagnostics that explain *why*
//! a graph lands on one side of the DepCache/DepComm trade-off.

use crate::csr::{CsrGraph, VertexId};
use crate::khop::khop_in_closure;
use crate::partition::Partitioning;

/// Degree-distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum in-degree.
    pub min: usize,
    /// Maximum in-degree.
    pub max: usize,
    /// Mean in-degree.
    pub mean: f64,
    /// Median in-degree.
    pub median: usize,
    /// 99th-percentile in-degree.
    pub p99: usize,
    /// Skew indicator: `max / mean` (≫1 for power-law graphs).
    pub hub_ratio: f64,
}

/// Computes the in-degree distribution summary.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    assert!(n > 0, "empty graph");
    let mut degs: Vec<usize> = (0..n as VertexId).map(|v| graph.in_degree(v)).collect();
    degs.sort_unstable();
    let mean = graph.avg_degree();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: degs[n / 2],
        p99: degs[((n - 1) as f64 * 0.99) as usize],
        hub_ratio: if mean > 0.0 { degs[n - 1] as f64 / mean } else { 0.0 },
    }
}

/// Per-partition replication statistics for a k-hop workload — the
/// quantity DepCache's redundant computation scales with.
#[derive(Debug, Clone)]
pub struct ReplicationStats {
    /// For each partition: distinct vertices in its k-hop closure.
    pub closure_sizes: Vec<usize>,
    /// For each partition: owned vertices.
    pub owned_sizes: Vec<usize>,
    /// Mean replication factor: Σ closure / |V| (1.0 = no replication).
    pub replication_factor: f64,
}

/// Measures k-hop closure replication under a partitioning.
pub fn replication_stats(
    graph: &CsrGraph,
    part: &Partitioning,
    hops: usize,
) -> ReplicationStats {
    let mut closure_sizes = Vec::with_capacity(part.num_parts());
    let mut owned_sizes = Vec::with_capacity(part.num_parts());
    for p in 0..part.num_parts() {
        let owned = part.part_vertices(p);
        let closure = khop_in_closure(graph, &owned, hops);
        closure_sizes.push(closure.all_vertices().len());
        owned_sizes.push(owned.len());
    }
    let total: usize = closure_sizes.iter().sum();
    ReplicationStats {
        replication_factor: total as f64 / graph.num_vertices().max(1) as f64,
        closure_sizes,
        owned_sizes,
    }
}

/// The boundary profile of a partitioning: how much of each partition's
/// dependency set is remote — what DepComm's traffic scales with.
#[derive(Debug, Clone)]
pub struct BoundaryStats {
    /// Edge-cut fraction.
    pub cut_fraction: f64,
    /// Distinct remote in-neighbors per partition.
    pub remote_deps: Vec<usize>,
    /// Mean remote dependencies per owned vertex.
    pub deps_per_vertex: f64,
}

/// Computes boundary statistics.
pub fn boundary_stats(graph: &CsrGraph, part: &Partitioning) -> BoundaryStats {
    let remote_deps = part.remote_dependency_counts(graph);
    let total: usize = remote_deps.iter().sum();
    BoundaryStats {
        cut_fraction: part.cut_fraction(graph),
        deps_per_vertex: total as f64 / graph.num_vertices().max(1) as f64,
        remote_deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, rmat};
    use crate::partition::Partitioner;

    fn power_law() -> CsrGraph {
        CsrGraph::from_edges(1000, &rmat(1000, 8000, (0.57, 0.19, 0.19), 7), true)
    }

    fn flat() -> CsrGraph {
        CsrGraph::from_edges(1000, &erdos_renyi(1000, 8000, 7), true)
    }

    #[test]
    fn degree_stats_detect_skew() {
        let p = degree_stats(&power_law());
        let f = degree_stats(&flat());
        assert!(p.hub_ratio > 2.0 * f.hub_ratio, "{} vs {}", p.hub_ratio, f.hub_ratio);
        assert!(p.max >= p.p99 && p.p99 >= p.median && p.median >= p.min);
        assert!((p.mean - power_law().avg_degree()).abs() < 1e-9);
    }

    #[test]
    fn replication_grows_with_hops() {
        let g = power_law();
        let part = Partitioner::Chunk.partition(&g, 4);
        let r1 = replication_stats(&g, &part, 1);
        let r2 = replication_stats(&g, &part, 2);
        assert!(r2.replication_factor >= r1.replication_factor);
        assert!(r1.replication_factor >= 1.0);
        for (c, o) in r1.closure_sizes.iter().zip(r1.owned_sizes.iter()) {
            assert!(c >= o);
        }
    }

    #[test]
    fn single_partition_has_no_boundary_and_no_replication() {
        let g = flat();
        let part = Partitioner::Chunk.partition(&g, 1);
        let b = boundary_stats(&g, &part);
        assert_eq!(b.cut_fraction, 0.0);
        assert_eq!(b.remote_deps, vec![0]);
        let r = replication_stats(&g, &part, 2);
        assert!((r.replication_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_stats_are_positive_on_cut_graphs() {
        let g = power_law();
        let part = Partitioner::Chunk.partition(&g, 8);
        let b = boundary_stats(&g, &part);
        assert!(b.cut_fraction > 0.0);
        assert!(b.deps_per_vertex > 0.0);
    }
}

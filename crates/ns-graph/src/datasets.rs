//! Dataset registry mirroring the paper's Table 2.
//!
//! Each [`DatasetSpec`] records the published statistics of one evaluation
//! graph — |V|, |E|, feature dimension, number of labels, and the hidden
//! dimension the paper pairs with it — together with the synthetic
//! generator that stands in for the unavailable raw data. Materializing at
//! `scale` shrinks |V| and |E| proportionally, preserving the average
//! degree that drives the DepCache/DepComm trade-off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::generate::{random_features, random_labels, rmat, sbm, SbmParams};
use ns_tensor::Tensor;

/// Which synthetic generator stands in for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// R-MAT power-law graph with random features/labels (runtime-focused
    /// experiments; the paper uses random features for these graphs too).
    Rmat,
    /// Stochastic block model with learnable community labels (accuracy
    /// experiments and the citation networks).
    Sbm,
}

/// Static description of one evaluation dataset (paper Table 2).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Published vertex count.
    pub vertices: usize,
    /// Published edge count.
    pub edges: usize,
    /// Input feature dimension (`ftr. dim`).
    pub feature_dim: usize,
    /// Number of label classes (`#L`).
    pub num_classes: usize,
    /// Hidden layer dimension the paper pairs with this graph.
    pub hidden_dim: usize,
    /// Stand-in generator.
    pub generator: GeneratorKind,
}

impl DatasetSpec {
    /// Average degree |E| / |V| of the published graph.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Materializes a scaled instance: `|V'| = max(64, |V| * scale)` and
    /// `|E'| = |E| * scale`, keeping the average degree. `seed` controls
    /// all randomness (graph, features, labels, splits).
    pub fn materialize(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((self.vertices as f64 * scale) as usize).max(64);
        let m = ((self.edges as f64 * scale) as usize).max(2 * n);
        match self.generator {
            GeneratorKind::Rmat => {
                let edges = rmat(n, m, (0.57, 0.19, 0.19), seed);
                let graph = CsrGraph::from_edges(n, &edges, true);
                let features = random_features(n, self.feature_dim, seed ^ 0xfeed);
                let labels = random_labels(n, self.num_classes, seed ^ 0x1abe1);
                Dataset::assemble(self, graph, features, labels, seed, scale)
            }
            GeneratorKind::Sbm => {
                let out = sbm(
                    &SbmParams {
                        n,
                        m,
                        communities: self.num_classes,
                        intra_fraction: 0.9,
                        feature_dim: self.feature_dim,
                        feature_noise: 1.0,
                    },
                    seed,
                );
                let graph = CsrGraph::from_edges(n, &out.edges, true);
                Dataset::assemble(self, graph, out.features, out.labels, seed, scale)
            }
        }
    }
}

/// A materialized dataset: graph, features, labels, and train/val/test
/// masks.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// The graph (with self-loops and GCN normalization).
    pub graph: CsrGraph,
    /// `|V| x feature_dim` input features.
    pub features: Tensor,
    /// Ground-truth label per vertex.
    pub labels: Vec<u32>,
    /// Number of label classes.
    pub num_classes: usize,
    /// Hidden dimension the paper pairs with this dataset.
    pub hidden_dim: usize,
    /// Training-set membership per vertex.
    pub train_mask: Vec<bool>,
    /// Validation-set membership per vertex.
    pub val_mask: Vec<bool>,
    /// Test-set membership per vertex.
    pub test_mask: Vec<bool>,
    /// The scale factor this instance was materialized at, relative to the
    /// published graph (1.0 = full size). Memory accounting uses it to
    /// project device-memory behaviour at the paper's scale.
    pub scale: f64,
}

impl Dataset {
    fn assemble(
        spec: &DatasetSpec,
        graph: CsrGraph,
        features: Tensor,
        labels: Vec<u32>,
        seed: u64,
        scale: f64,
    ) -> Dataset {
        let n = graph.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5711);
        let mut train_mask = vec![false; n];
        let mut val_mask = vec![false; n];
        let mut test_mask = vec![false; n];
        for v in 0..n {
            let r: f64 = rng.random();
            if r < 0.6 {
                train_mask[v] = true;
            } else if r < 0.8 {
                val_mask[v] = true;
            } else {
                test_mask[v] = true;
            }
        }
        Dataset {
            name: spec.name.to_string(),
            graph,
            features,
            labels,
            num_classes: spec.num_classes,
            hidden_dim: spec.hidden_dim,
            train_mask,
            val_mask,
            test_mask,
            scale,
        }
    }

    /// Input feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of training vertices.
    pub fn num_train(&self) -> usize {
        self.train_mask.iter().filter(|&&b| b).count()
    }
}

/// The registry of all Table 2 datasets.
pub fn registry() -> Vec<DatasetSpec> {
    use GeneratorKind::*;
    vec![
        DatasetSpec { name: "google", vertices: 870_000, edges: 5_100_000, feature_dim: 512, num_classes: 16, hidden_dim: 256, generator: Rmat },
        DatasetSpec { name: "pokec", vertices: 1_600_000, edges: 30_000_000, feature_dim: 512, num_classes: 16, hidden_dim: 256, generator: Rmat },
        DatasetSpec { name: "livejournal", vertices: 4_800_000, edges: 68_000_000, feature_dim: 320, num_classes: 16, hidden_dim: 160, generator: Rmat },
        DatasetSpec { name: "reddit", vertices: 230_000, edges: 114_000_000, feature_dim: 602, num_classes: 41, hidden_dim: 256, generator: Sbm },
        DatasetSpec { name: "orkut", vertices: 3_100_000, edges: 117_000_000, feature_dim: 320, num_classes: 20, hidden_dim: 160, generator: Rmat },
        DatasetSpec { name: "wikilink", vertices: 12_000_000, edges: 378_000_000, feature_dim: 256, num_classes: 16, hidden_dim: 128, generator: Rmat },
        DatasetSpec { name: "twitter", vertices: 42_000_000, edges: 1_500_000_000, feature_dim: 52, num_classes: 16, hidden_dim: 32, generator: Rmat },
        DatasetSpec { name: "cora", vertices: 2_700, edges: 5_400, feature_dim: 1433, num_classes: 7, hidden_dim: 128, generator: Sbm },
        DatasetSpec { name: "citeseer", vertices: 3_300, edges: 4_700, feature_dim: 3307, num_classes: 6, hidden_dim: 128, generator: Sbm },
        DatasetSpec { name: "pubmed", vertices: 20_000, edges: 44_000, feature_dim: 500, num_classes: 3, hidden_dim: 128, generator: Sbm },
    ]
}

/// Looks a spec up by its paper name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2() {
        let specs = registry();
        assert_eq!(specs.len(), 10);
        let reddit = by_name("reddit").unwrap();
        assert_eq!(reddit.feature_dim, 602);
        assert_eq!(reddit.num_classes, 41);
        assert!((reddit.avg_degree() - 495.6).abs() < 1.0);
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn materialize_preserves_avg_degree_shape() {
        let spec = by_name("google").unwrap();
        let ds = spec.materialize(0.01, 42);
        let n = ds.graph.num_vertices();
        assert!((8_000..10_000).contains(&n), "n = {n}");
        // avg degree (incl. self loop, some dup-dropping) near 5.86 + 1.
        let d = ds.graph.avg_degree();
        assert!((4.0..9.0).contains(&d), "avg degree {d}");
        assert_eq!(ds.feature_dim(), 512);
        assert_eq!(ds.labels.len(), n);
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec = by_name("cora").unwrap();
        let a = spec.materialize(1.0, 3);
        let b = spec.materialize(1.0, 3);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features.data(), b.features.data());
        assert_eq!(a.train_mask, b.train_mask);
    }

    #[test]
    fn masks_partition_vertices() {
        let ds = by_name("pubmed").unwrap().materialize(0.2, 9);
        for v in 0..ds.graph.num_vertices() {
            let count = [&ds.train_mask, &ds.val_mask, &ds.test_mask]
                .iter()
                .filter(|m| m[v])
                .count();
            assert_eq!(count, 1, "vertex {v} in {count} splits");
        }
        let frac = ds.num_train() as f64 / ds.graph.num_vertices() as f64;
        assert!((0.5..0.7).contains(&frac));
    }

    #[test]
    fn minimum_size_floor_applies() {
        let ds = by_name("cora").unwrap().materialize(0.0001, 1);
        assert!(ds.graph.num_vertices() >= 64);
    }
}

//! Graph storage and workload generation for the NeutronStar reproduction.
//!
//! This crate provides every graph-side substrate the paper's system needs:
//!
//! * [`CsrGraph`] — a compressed sparse graph held in both CSC (in-edges,
//!   driving forward aggregation) and CSR (out-edges, driving backward
//!   scatter) form, with pre-computed GCN normalization weights. This is
//!   the layout NeutronStar describes in §4.3 ("CSC for forward
//!   computation and CSR for backward computation").
//! * [`generate`] — synthetic generators: R-MAT (power-law web/social
//!   graphs), Erdős–Rényi, and a stochastic block model whose labels are
//!   learnable from features (for the accuracy experiments).
//! * [`datasets`] — a registry mirroring the paper's Table 2. Each
//!   [`DatasetSpec`] materializes a scaled synthetic
//!   instance with matched average degree, feature dimension, label count,
//!   and hidden size.
//! * [`partition`] — chunk-based (the paper's default), metis-like greedy
//!   edge-cut, and Fennel streaming partitioners (§5.7 / Fig. 15).
//! * [`khop`] — BFS k-hop in-neighborhood closures (`V_i^l` of
//!   Algorithm 2) and per-vertex dependency-subtree measurement used by the
//!   hybrid cost model (Eq. 1).

pub mod csr;
pub mod datasets;
pub mod generate;
pub mod io;
pub mod khop;
pub mod partition;
pub mod stats;

pub use csr::{CsrGraph, VertexId};
pub use datasets::{Dataset, DatasetSpec};
pub use partition::{Partitioner, Partitioning};

//! Plain-text edge-list I/O.
//!
//! The interchange format every graph-systems paper's artifact uses: one
//! `src dst` pair per line, `#`-prefixed comment lines ignored. Lets the
//! reproduction exchange graphs with external tools (SNAP dumps,
//! partitioner inputs) and persist generated instances.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::csr::{CsrGraph, VertexId};

/// Writes `graph` as an edge list, one `src dst` pair per line, preceded
/// by a comment header with the vertex count (self-loops added by the
/// builder are skipped, since loading re-adds them when requested).
pub fn write_edge_list(graph: &CsrGraph, w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# neutronstar edge list")?;
    writeln!(w, "# vertices {}", graph.num_vertices())?;
    for (src, dst, _) in graph.edges() {
        if src != dst {
            writeln!(w, "{src} {dst}")?;
        }
    }
    Ok(())
}

/// Reads an edge list. Returns `(num_vertices, edges)`; the vertex count
/// is taken from a `# vertices N` header when present, otherwise inferred
/// as `max id + 1`. Malformed lines produce an error naming the line.
pub fn read_edge_list(r: &mut dyn Read) -> io::Result<(usize, Vec<(VertexId, VertexId)>)> {
    let reader = BufReader::new(r);
    let mut edges = Vec::new();
    let mut declared_n: Option<usize> = None;
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(Ok(n)) = parts.next().map(str::parse::<usize>) {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<VertexId> {
            tok.and_then(|t| t.parse::<VertexId>().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge at line {}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_id = max_id.max(u as u64).max(v as u64);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or((max_id + 1) as usize);
    if edges.iter().any(|&(u, v)| (u as usize) >= n || (v as usize) >= n) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "edge endpoint exceeds declared vertex count",
        ));
    }
    Ok((n, edges))
}

/// Convenience: loads an edge list straight into a [`CsrGraph`].
pub fn read_graph(r: &mut dyn Read, self_loops: bool) -> io::Result<CsrGraph> {
    let (n, edges) = read_edge_list(r)?;
    Ok(CsrGraph::from_edges(n, &edges, self_loops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat;

    #[test]
    fn roundtrip_preserves_topology() {
        let edges = rmat(200, 1200, (0.57, 0.19, 0.19), 3);
        let g = CsrGraph::from_edges(200, &edges, true);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_graph(&mut buf.as_slice(), true).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..200u32 {
            assert_eq!(g2.in_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn header_declares_isolated_vertices() {
        let text = "# vertices 10\n0 1\n1 2\n";
        let (n, edges) = read_edge_list(&mut text.as_bytes()).unwrap();
        assert_eq!(n, 10);
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn vertex_count_inferred_without_header() {
        let text = "0 5\n3 2\n";
        let (n, _) = read_edge_list(&mut text.as_bytes()).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(&mut text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let text = "# vertices 3\n0 7\n";
        assert!(read_edge_list(&mut text.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\n0 1\n\n# world\n1 0\n";
        let (_, edges) = read_edge_list(&mut text.as_bytes()).unwrap();
        assert_eq!(edges.len(), 2);
    }
}

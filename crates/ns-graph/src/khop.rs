//! K-hop in-neighborhood closures and dependency-subtree measurement.
//!
//! These routines implement the BFS dependency retrieval of Algorithm 2
//! (DepCache needs `V_i`'s 1..L-hop in-neighbors cached locally) and the
//! per-neighbor subtree accounting behind the hybrid cost model's Eq. 1
//! (the redundant-computation cost of caching a dependent neighbor `u` is
//! the size of the dependency subtree rooted at `u`, excluding vertices
//! and edges the worker already owns or has already replicated).

use rustc_hash::FxHashSet;

use crate::csr::{CsrGraph, VertexId};

/// Per-layer vertex sets of the k-hop closure.
///
/// `layers[0]` is the seed set itself (the vertices whose layer-`L`
/// representations the worker must produce); `layers[h]` is the set of
/// vertices whose layer-`L-h` representations are needed, i.e. the union of
/// in-neighbors of `layers[h-1]` (paper notation: `V_i^{L-h}`). Sets
/// overlap across layers exactly as the paper's do.
#[derive(Debug, Clone)]
pub struct KhopClosure {
    /// `layers[h]` = vertices needed at depth `h`, sorted ascending.
    pub layers: Vec<Vec<VertexId>>,
}

impl KhopClosure {
    /// Union of all layers, sorted and deduplicated.
    pub fn all_vertices(&self) -> Vec<VertexId> {
        let mut all: Vec<VertexId> = self.layers.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Number of (vertex, layer) replica slots, the quantity that drives
    /// redundant computation.
    pub fn replica_slots(&self) -> usize {
        self.layers.iter().skip(1).map(Vec::len).sum()
    }
}

/// Computes the `hops`-hop in-neighborhood closure of `seeds`.
pub fn khop_in_closure(graph: &CsrGraph, seeds: &[VertexId], hops: usize) -> KhopClosure {
    let mut layers = Vec::with_capacity(hops + 1);
    let mut frontier: Vec<VertexId> = {
        let mut s = seeds.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    };
    layers.push(frontier.clone());
    for _ in 0..hops {
        let mut next = FxHashSet::default();
        for &v in &frontier {
            for &u in graph.in_neighbors(v) {
                next.insert(u);
            }
        }
        let mut next: Vec<VertexId> = next.into_iter().collect();
        next.sort_unstable();
        layers.push(next.clone());
        frontier = next;
    }
    KhopClosure { layers }
}

/// Size of the dependency subtree rooted at `u` for an `l`-layer
/// computation: the number of vertices and edges at each depth
/// `1..=depth`, excluding `owned` vertices (the worker's own partition,
/// which never causes redundant work) and `already_cached` vertices
/// (`V_rep` in Algorithm 4 — dependencies previously replicated by an
/// earlier caching decision, whose cost must not be double counted).
///
/// Returns `(vertices_per_depth, edges_per_depth)` with index 0 = depth 1
/// (the in-neighbors of `u` themselves).
pub fn dependency_subtree(
    graph: &CsrGraph,
    u: VertexId,
    depth: usize,
    owned: &dyn Fn(VertexId) -> bool,
    already_cached: &FxHashSet<VertexId>,
) -> (Vec<usize>, Vec<usize>) {
    let mut verts = Vec::with_capacity(depth);
    let mut edges = Vec::with_capacity(depth);
    let mut frontier = vec![u];
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    for _ in 0..depth {
        let mut next = Vec::new();
        let mut v_count = 0usize;
        let mut e_count = 0usize;
        for &v in &frontier {
            // Edges into a vertex we must compute are replayed regardless
            // of where the sources live; vertex work is only counted for
            // sources we would have to compute redundantly.
            for &src in graph.in_neighbors(v) {
                e_count += 1;
                if owned(src) || already_cached.contains(&src) || seen.contains(&src) {
                    continue;
                }
                seen.insert(src);
                v_count += 1;
                next.push(src);
            }
        }
        verts.push(v_count);
        edges.push(e_count);
        frontier = next;
        if frontier.is_empty() && verts.len() < depth {
            // Remaining depths contribute nothing.
            while verts.len() < depth {
                verts.push(0);
                edges.push(0);
            }
            break;
        }
    }
    (verts, edges)
}

/// Collects the distinct vertices of `u`'s dependency subtree up to
/// `depth`, excluding `owned` vertices. Used to extend `V_rep` after a
/// caching decision (Algorithm 4, line 13).
pub fn subtree_vertices(
    graph: &CsrGraph,
    u: VertexId,
    depth: usize,
    owned: &dyn Fn(VertexId) -> bool,
) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut frontier = vec![u];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &v in &frontier {
            for &src in graph.in_neighbors(v) {
                if owned(src) || seen.contains(&src) {
                    continue;
                }
                seen.insert(src);
                next.push(src);
                out.push(src);
            }
        }
        frontier = next;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 -> 1 -> 2 -> 3 plus 4 -> 2.
    fn chain() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (4, 2)], false)
    }

    #[test]
    fn closure_layers_follow_in_edges() {
        let g = chain();
        let c = khop_in_closure(&g, &[3], 2);
        assert_eq!(c.layers[0], vec![3]);
        assert_eq!(c.layers[1], vec![2]);
        assert_eq!(c.layers[2], vec![1, 4]);
        assert_eq!(c.all_vertices(), vec![1, 2, 3, 4]);
        assert_eq!(c.replica_slots(), 3);
    }

    #[test]
    fn closure_dedups_seeds_and_overlap() {
        let g = chain();
        let c = khop_in_closure(&g, &[3, 3, 2], 1);
        assert_eq!(c.layers[0], vec![2, 3]);
        // In-neighbors of {2, 3}: {1, 4} ∪ {2} = {1, 2, 4}.
        assert_eq!(c.layers[1], vec![1, 2, 4]);
    }

    #[test]
    fn subtree_counts_exclude_owned() {
        let g = chain();
        let owned = |v: VertexId| v == 1; // worker owns vertex 1
        let none = FxHashSet::default();
        // Subtree of u = 2 at depth 2: depth 1 edges {1->2, 4->2} (2 edges),
        // vertices {4} (1 excluded as owned); depth 2 edges into 4: none.
        let (verts, edges) = dependency_subtree(&g, 2, 2, &owned, &none);
        assert_eq!(edges, vec![2, 0]);
        assert_eq!(verts, vec![1, 0]);
    }

    #[test]
    fn subtree_counts_exclude_already_cached() {
        let g = chain();
        let owned = |_: VertexId| false;
        let mut cached = FxHashSet::default();
        cached.insert(1u32);
        cached.insert(4u32);
        let (verts, edges) = dependency_subtree(&g, 2, 2, &owned, &cached);
        // Edges still replayed (2 at depth 1), but no new vertex compute.
        assert_eq!(edges[0], 2);
        assert_eq!(verts, vec![0, 0]);
    }

    #[test]
    fn subtree_vertices_lists_transitive_deps() {
        let g = chain();
        let owned = |_: VertexId| false;
        let vs = subtree_vertices(&g, 3, 3, &owned);
        assert_eq!(vs, vec![0, 1, 2, 4]);
        let owned1 = |v: VertexId| v == 2;
        // Owning 2 cuts the whole upstream chain.
        assert_eq!(subtree_vertices(&g, 3, 3, &owned1), Vec::<u32>::new());
    }

    #[test]
    fn zero_hops_is_identity() {
        let g = chain();
        let c = khop_in_closure(&g, &[0, 2], 0);
        assert_eq!(c.layers.len(), 1);
        assert_eq!(c.layers[0], vec![0, 2]);
        assert_eq!(c.replica_slots(), 0);
    }
}

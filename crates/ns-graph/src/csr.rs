//! Compressed sparse graph storage.
//!
//! The graph is stored twice: CSC (grouped by destination — the in-edges a
//! vertex aggregates over during forward propagation) and CSR (grouped by
//! source — the out-edges along which gradients scatter during backward
//! propagation). NeutronStar organizes each worker's edges the same way
//! (§4.3).

/// Vertex identifier. `u32` bounds graphs at ~4.3 B vertices, far beyond
/// anything this reproduction materializes, and halves index memory.
pub type VertexId = u32;

/// An immutable directed graph in CSC + CSR form.
///
/// Edges are deduplicated and sorted; within a destination's in-edge list,
/// sources ascend (and vice versa for out-edges), which makes every
/// aggregation order deterministic — a property the engine-equivalence
/// tests rely on.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    n: usize,
    // CSC: in-edges grouped by destination.
    in_offsets: Vec<usize>,
    in_srcs: Vec<VertexId>,
    // CSR: out-edges grouped by source.
    out_offsets: Vec<usize>,
    out_dsts: Vec<VertexId>,
    // Symmetric GCN normalization weight per in-edge (parallel to in_srcs).
    in_weights: Vec<f32>,
}

impl CsrGraph {
    /// Builds a graph from a directed edge list. Duplicate edges are
    /// dropped. When `self_loops` is set, a `(v, v)` edge is added for
    /// every vertex (the usual GCN Â = A + I construction), which also
    /// guarantees every vertex has at least one in-edge.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)], self_loops: bool) -> Self {
        let mut list: Vec<(VertexId, VertexId)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n && (self_loops || u != v))
            .collect();
        if self_loops {
            list.extend((0..n as VertexId).map(|v| (v, v)));
        }
        // Sort by (dst, src) for CSC; dedup.
        list.sort_unstable_by_key(|&(u, v)| (v, u));
        list.dedup();

        let m = list.len();
        let mut in_offsets = vec![0usize; n + 1];
        let mut in_srcs = Vec::with_capacity(m);
        for &(u, v) in &list {
            in_offsets[v as usize + 1] += 1;
            in_srcs.push(u);
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }

        // CSR via counting sort by source.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &list {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut cursor = out_offsets.clone();
        let mut out_dsts = vec![0 as VertexId; m];
        for &(u, v) in &list {
            out_dsts[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sorting by (dst, src) then stably bucketing by src leaves each
        // out-list sorted by dst already.

        // GCN symmetric normalization using in-degrees (self-loop counted
        // when present): w(u,v) = 1/sqrt(deg(u) * deg(v)).
        let deg = |v: usize| -> f32 {
            let d = in_offsets[v + 1] - in_offsets[v];
            (d.max(1)) as f32
        };
        let mut in_weights = Vec::with_capacity(m);
        for v in 0..n {
            for idx in in_offsets[v]..in_offsets[v + 1] {
                let u = in_srcs[idx] as usize;
                in_weights.push(1.0 / (deg(u) * deg(v)).sqrt());
            }
        }

        Self { n, in_offsets, in_srcs, out_offsets, out_dsts, in_weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) directed edges, including any self-loops.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.in_srcs.len()
    }

    /// Average in-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.n as f64
    }

    /// Sources of `v`'s in-edges, ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_srcs[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// GCN weights parallel to [`Self::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> &[f32] {
        let v = v as usize;
        &self.in_weights[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Destinations of `v`'s out-edges, ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_dsts[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// The CSC offset array (length `n + 1`).
    pub fn in_offsets(&self) -> &[usize] {
        &self.in_offsets
    }

    /// All in-edge sources, grouped by destination.
    pub fn in_srcs(&self) -> &[VertexId] {
        &self.in_srcs
    }

    /// All in-edge GCN weights, grouped by destination.
    pub fn all_in_weights(&self) -> &[f32] {
        &self.in_weights
    }

    /// Iterates over all edges as `(src, dst, weight)` in (dst, src) order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        (0..self.n as VertexId).flat_map(move |v| {
            self.in_neighbors(v)
                .iter()
                .zip(self.in_weights(v).iter())
                .map(move |(&u, &w)| (u, v, w))
        })
    }

    /// Estimated in-memory footprint of the structure in bytes (offsets +
    /// index arrays + weights). Used by the device-memory accountant.
    pub fn structure_bytes(&self) -> u64 {
        ((self.in_offsets.len() + self.out_offsets.len()) * std::mem::size_of::<usize>()
            + (self.in_srcs.len() + self.out_dsts.len()) * std::mem::size_of::<VertexId>()
            + self.in_weights.len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], false)
    }

    #[test]
    fn basic_topology() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[u32]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn self_loops_add_one_edge_per_vertex() {
        let g = CsrGraph::from_edges(3, &[(0, 1)], true);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.in_neighbors(1), &[0, 1]);
        assert_eq!(g.in_neighbors(2), &[2]);
    }

    #[test]
    fn duplicate_and_out_of_range_edges_dropped() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1), (5, 1), (1, 9)], false);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn csc_and_csr_agree() {
        let g = diamond();
        let mut from_csc: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut from_csr: Vec<(u32, u32)> = (0..4u32)
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        from_csc.sort_unstable();
        from_csr.sort_unstable();
        assert_eq!(from_csc, from_csr);
    }

    #[test]
    fn gcn_weights_are_symmetric_normalized() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (1, 2)], true);
        // deg(2) = 3 (two in + self), deg(0) = 1 (self), so w(0,2) = 1/sqrt(3).
        let w = g.in_weights(2);
        let nbrs = g.in_neighbors(2);
        let idx0 = nbrs.iter().position(|&u| u == 0).unwrap();
        assert!((w[idx0] - 1.0 / 3.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(4, 0), (2, 0), (3, 0), (1, 0)], false);
        assert_eq!(g.in_neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn structure_bytes_positive() {
        assert!(diamond().structure_bytes() > 0);
    }
}

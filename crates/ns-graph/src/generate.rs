//! Synthetic graph generators.
//!
//! The paper evaluates on public web/social graphs (Google, Pokec,
//! LiveJournal, Reddit, Orkut, Wiki-link, Twitter) and small citation
//! networks. Those exact datasets are not available offline, so the
//! dataset registry materializes scaled R-MAT / SBM instances with matched
//! vertex counts, average degrees and feature dimensions — the properties
//! that drive the DepCache/DepComm trade-off the paper studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

use crate::csr::VertexId;
#[cfg(test)]
use crate::csr::CsrGraph;
use ns_tensor::Tensor;

/// R-MAT recursive-matrix generator (Chakrabarti et al.), the standard
/// synthetic stand-in for power-law web/social graphs.
///
/// Generates `m` distinct directed edges over `n` vertices using quadrant
/// probabilities `(a, b, c, d)`; Graph500 defaults are `(0.57, 0.19, 0.19,
/// 0.05)`. Self-loops are permitted (the CSC builder drops them unless
/// self-loops are requested there).
pub fn rmat(
    n: usize,
    m: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    assert!(n > 0, "rmat: empty vertex set");
    assert!(a + b + c <= 1.0 + 1e-9, "rmat: probabilities exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (usize::BITS - (n - 1).leading_zeros().max(1)) as usize;
    let size = 1usize << levels;
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(64).max(1024);
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        let (mut x0, mut x1) = (0usize, size);
        let (mut y0, mut y1) = (0usize, size);
        for _ in 0..levels {
            let r: f64 = rng.random();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (1, 0)
            } else if r < a + b + c {
                (0, 1)
            } else {
                (1, 1)
            };
            let mx = (x0 + x1) / 2;
            let my = (y0 + y1) / 2;
            if dx == 0 {
                x1 = mx;
            } else {
                x0 = mx;
            }
            if dy == 0 {
                y1 = my;
            } else {
                y0 = my;
            }
        }
        let (u, v) = (x0, y0);
        if u < n && v < n {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    edges
}

/// Erdős–Rényi G(n, m): `m` uniform random directed edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n > 0, "erdos_renyi: empty vertex set");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            (
                rng.random_range(0..n) as VertexId,
                rng.random_range(0..n) as VertexId,
            )
        })
        .collect()
}

/// Output of the stochastic block model: a labeled, featured graph on
/// which a GNN can genuinely learn (labels = community, features = noisy
/// community indicator), used for the accuracy experiments (Fig. 14).
pub struct SbmOutput {
    /// Directed edge list (both directions of each undirected pair).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Community (= ground-truth label) per vertex.
    pub labels: Vec<u32>,
    /// `n x feature_dim` feature matrix.
    pub features: Tensor,
}

/// Parameters for [`sbm`].
pub struct SbmParams {
    /// Number of vertices.
    pub n: usize,
    /// Target number of directed edges.
    pub m: usize,
    /// Number of communities (= classes).
    pub communities: usize,
    /// Fraction of edges that stay within a community (homophily). `0.9`
    /// gives an easily learnable task, like the citation/Reddit graphs.
    pub intra_fraction: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Std-dev of Gaussian feature noise added to the community indicator.
    pub feature_noise: f32,
}

/// Planted-partition generator. Community sizes are equal (±1).
pub fn sbm(params: &SbmParams, seed: u64) -> SbmOutput {
    let SbmParams { n, m, communities, intra_fraction, feature_dim, feature_noise } = *params;
    assert!(communities >= 1 && communities <= n, "sbm: bad community count");
    assert!(feature_dim >= 1, "sbm: need at least one feature");
    let mut rng = StdRng::seed_from_u64(seed);

    let labels: Vec<u32> = (0..n).map(|v| (v % communities) as u32).collect();
    // Vertices of each community, so intra edges can be sampled directly.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); communities];
    for (v, &c) in labels.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }

    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = if rng.random::<f64>() < intra_fraction {
            let com = &members[labels[u] as usize];
            com[rng.random_range(0..com.len())] as usize
        } else {
            rng.random_range(0..n)
        };
        if u == v {
            continue;
        }
        edges.push((u as VertexId, v as VertexId));
        if edges.len() < m {
            edges.push((v as VertexId, u as VertexId));
        }
    }

    // Features: community indicator (tiled across feature_dim) plus noise.
    let mut data = vec![0.0f32; n * feature_dim];
    for v in 0..n {
        let c = labels[v] as usize;
        for f in 0..feature_dim {
            let signal = if f % communities == c { 1.0 } else { 0.0 };
            let noise: f32 = {
                // Box-Muller; two uniforms -> one normal sample.
                let u1: f32 = rng.random::<f32>().max(1e-7);
                let u2: f32 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            data[v * feature_dim + f] = signal + feature_noise * noise;
        }
    }

    SbmOutput {
        edges,
        labels,
        features: Tensor::from_vec(n, feature_dim, data),
    }
}

/// Barabási–Albert preferential attachment: each arriving vertex links to
/// `m_per_vertex` existing vertices chosen proportionally to their current
/// degree. Produces power-law graphs with a tunable, guaranteed minimum
/// out-degree — useful when R-MAT's duplicate-heavy tail is undesirable.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 2, "need at least two vertices");
    let m_per_vertex = m_per_vertex.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_per_vertex);
    // Repeated-endpoint list: sampling uniformly from it realizes
    // degree-proportional selection.
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    edges.push((1, 0));
    for v in 2..n as VertexId {
        let mut chosen = FxHashSet::default();
        let want = (m_per_vertex).min(v as usize);
        while chosen.len() < want {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for t in chosen {
            edges.push((v, t));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    edges
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects
/// to its `k/2` neighbors on each side, with each edge rewired to a
/// uniform target with probability `beta`. High clustering, short paths —
/// the opposite regime from power-law graphs.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 4, "need at least four vertices");
    let half = (k / 2).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * half);
    for v in 0..n {
        for j in 1..=half {
            let mut t = (v + j) % n;
            if rng.random::<f64>() < beta {
                // Rewire to a uniform non-self target.
                loop {
                    t = rng.random_range(0..n);
                    if t != v {
                        break;
                    }
                }
            }
            edges.push((v as VertexId, t as VertexId));
        }
    }
    edges
}

/// Uniform random features in `[-0.5, 0.5)` for graphs without natural
/// features, matching the paper's "randomly generated features".
pub fn random_features(n: usize, dim: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..n * dim).map(|_| rng.random::<f32>() - 0.5).collect();
    Tensor::from_vec(n, dim, data)
}

/// Uniform random labels for graphs whose accuracy is not under study.
pub fn random_labels(n: usize, classes: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..classes) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_requested_edges_and_is_seeded() {
        let e1 = rmat(1000, 5000, (0.57, 0.19, 0.19), 42);
        let e2 = rmat(1000, 5000, (0.57, 0.19, 0.19), 42);
        assert_eq!(e1.len(), 5000);
        assert_eq!(e1, e2);
        assert!(e1.iter().all(|&(u, v)| (u as usize) < 1000 && (v as usize) < 1000));
    }

    #[test]
    fn rmat_is_skewed() {
        let edges = rmat(1 << 10, 20_000, (0.57, 0.19, 0.19), 7);
        let g = CsrGraph::from_edges(1 << 10, &edges, false);
        let max_deg = (0..1u32 << 10).map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.avg_degree();
        // Power-law: the hub degree dwarfs the average.
        assert!(
            (max_deg as f64) > 8.0 * avg,
            "max {max_deg} vs avg {avg} not skewed"
        );
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let edges = erdos_renyi(1 << 10, 20_000, 7);
        let g = CsrGraph::from_edges(1 << 10, &edges, false);
        let max_deg = (0..1u32 << 10).map(|v| g.in_degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!((max_deg as f64) < 4.0 * avg, "ER should not be skewed");
    }

    #[test]
    fn sbm_shapes_and_homophily() {
        let params = SbmParams {
            n: 600,
            m: 6000,
            communities: 3,
            intra_fraction: 0.9,
            feature_dim: 12,
            feature_noise: 0.1,
        };
        let out = sbm(&params, 1);
        assert_eq!(out.labels.len(), 600);
        assert_eq!(out.features.shape(), (600, 12));
        assert!(out.edges.len() >= 6000);
        let intra = out
            .edges
            .iter()
            .filter(|&&(u, v)| out.labels[u as usize] == out.labels[v as usize])
            .count();
        let frac = intra as f64 / out.edges.len() as f64;
        assert!(frac > 0.75, "intra fraction {frac} too low");
    }

    #[test]
    fn sbm_features_carry_community_signal() {
        let params = SbmParams {
            n: 90,
            m: 500,
            communities: 3,
            intra_fraction: 0.9,
            feature_dim: 9,
            feature_noise: 0.05,
        };
        let out = sbm(&params, 3);
        // Mean activation on community-aligned feature slots should beat
        // the off-slots decisively at low noise.
        let mut aligned = 0.0f32;
        let mut off = 0.0f32;
        let (mut na, mut no) = (0, 0);
        for v in 0..90 {
            let c = out.labels[v] as usize;
            for f in 0..9 {
                let val = out.features.get(v, f);
                if f % 3 == c {
                    aligned += val;
                    na += 1;
                } else {
                    off += val;
                    no += 1;
                }
            }
        }
        assert!(aligned / na as f32 > 0.8);
        assert!((off / no as f32).abs() < 0.2);
    }

    #[test]
    fn barabasi_albert_is_skewed_with_min_degree() {
        let edges = barabasi_albert(2000, 4, 11);
        let g = CsrGraph::from_edges(2000, &edges, false);
        // Every vertex beyond the seed pair attaches to >= 1 target.
        for v in 2..2000u32 {
            assert!(g.out_degree(v) >= 1, "vertex {v}");
        }
        let stats = crate::stats::degree_stats(&g);
        assert!(stats.hub_ratio > 5.0, "hub ratio {}", stats.hub_ratio);
    }

    #[test]
    fn watts_strogatz_degree_is_regular_at_beta_zero() {
        let edges = watts_strogatz(100, 4, 0.0, 3);
        let g = CsrGraph::from_edges(100, &edges, false);
        for v in 0..100u32 {
            assert_eq!(g.out_degree(v), 2, "lattice out-degree");
            assert_eq!(g.in_degree(v), 2, "lattice in-degree");
        }
    }

    #[test]
    fn watts_strogatz_rewiring_breaks_the_lattice() {
        let lattice = watts_strogatz(200, 4, 0.0, 3);
        let rewired = watts_strogatz(200, 4, 0.5, 3);
        let long_range = |edges: &[(u32, u32)]| {
            edges
                .iter()
                .filter(|&&(u, v)| {
                    let d = (u as i64 - v as i64).rem_euclid(200).min(
                        (v as i64 - u as i64).rem_euclid(200),
                    );
                    d > 2
                })
                .count()
        };
        assert_eq!(long_range(&lattice), 0);
        assert!(long_range(&rewired) > 20);
    }

    #[test]
    fn random_features_and_labels_are_bounded() {
        let f = random_features(10, 4, 5);
        assert!(f.data().iter().all(|v| (-0.5..0.5).contains(v)));
        let l = random_labels(100, 7, 5);
        assert!(l.iter().all(|&c| c < 7));
        // All classes appear with 100 samples over 7 classes, w.h.p.
        let distinct: std::collections::HashSet<_> = l.iter().collect();
        assert!(distinct.len() >= 5);
    }
}
